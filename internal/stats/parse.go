package stats

import "strings"

// TableData is the machine-readable form of a Table: what the JSON
// experiment output carries instead of (or alongside) the rendered
// text. Cells stay strings — the renderer already fixed their
// formatting, and consumers that want numbers can parse the columns
// they care about.
type TableData struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Data returns the table's contents as TableData (deep-copied, so the
// caller can keep it across later AddRow calls).
func (t *Table) Data() TableData {
	rows := make([][]string, len(t.rows))
	for i, r := range t.rows {
		rows[i] = append([]string(nil), r...)
	}
	return TableData{
		Title:   t.Title,
		Columns: append([]string(nil), t.Columns...),
		Rows:    rows,
	}
}

// ParseTables recovers every table embedded in a rendered report.
//
// It exploits two invariants of Table.String: the separator line under
// the header is dashes exactly as wide as each column (so its dash runs
// give the column byte offsets), and rows run from the separator to the
// next blank line. This lets the experiment harness keep returning
// plain-text reports — every substring the existing tests grep for is
// untouched — while -json re-derives structure from the same bytes the
// human reads.
func ParseTables(report string) []TableData {
	lines := strings.Split(report, "\n")
	var out []TableData
	for i := 1; i < len(lines); i++ {
		if !isSeparatorLine(lines[i]) {
			continue
		}
		spans := columnSpans(lines[i])
		td := TableData{Columns: cellsAt(lines[i-1], spans)}
		// The line above the header is the title iff it exists, is
		// non-empty, and sits at the start of the report or after a
		// blank line (otherwise it is body text of whatever precedes).
		if i >= 2 && lines[i-2] != "" && !isSeparatorLine(lines[i-2]) && (i == 2 || lines[i-3] == "") {
			td.Title = lines[i-2]
		}
		j := i + 1
		for ; j < len(lines) && lines[j] != "" && !isSeparatorLine(lines[j]); j++ {
			td.Rows = append(td.Rows, cellsAt(lines[j], spans))
		}
		i = j - 1
		out = append(out, td)
	}
	return out
}

// isSeparatorLine reports whether line is a header/body separator:
// nothing but dashes and the two-space column gaps.
func isSeparatorLine(line string) bool {
	dash := false
	for _, r := range line {
		switch r {
		case '-':
			dash = true
		case ' ':
		default:
			return false
		}
	}
	return dash
}

// span is a half-open byte range of one column; end < 0 means
// "to end of line" (the last column loses its padding to TrimRight).
type span struct{ start, end int }

func columnSpans(sep string) []span {
	var spans []span
	start, in := 0, false
	for i, r := range sep {
		switch {
		case r == '-' && !in:
			start, in = i, true
		case r != '-' && in:
			spans = append(spans, span{start, i})
			in = false
		}
	}
	if in {
		spans = append(spans, span{start, len(sep)})
	}
	if len(spans) > 0 {
		spans[len(spans)-1].end = -1
	}
	return spans
}

func cellsAt(line string, spans []span) []string {
	cells := make([]string, len(spans))
	for i, sp := range spans {
		if sp.start >= len(line) {
			continue
		}
		end := sp.end
		if end < 0 || end > len(line) {
			end = len(line)
		}
		cells[i] = strings.TrimSpace(line[sp.start:end])
	}
	return cells
}
