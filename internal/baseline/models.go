package baseline

import (
	"repro/internal/vm"
	"repro/internal/word"
	"repro/internal/workload"
)

// Guarded models the paper's scheme: a single virtually-addressed
// cache shared by all domains, one shared page table consulted only on
// cache misses, and *no* protection events of any kind — the checks ride
// inside the execution units on pointer bits that are already in
// registers.
type Guarded struct{ c Costs }

// NewGuarded returns the guarded-pointer model.
func NewGuarded(c Costs) *Guarded { return &Guarded{c} }

// Name implements Model.
func (g *Guarded) Name() string { return "guarded-ptr" }

// TagOverheadBytes reports the only storage guarded pointers add: one
// tag bit per 64-bit word over memBytes (Sec 4.1's 1.5%).
func TagOverheadBytes(memBytes uint64) uint64 {
	return memBytes / (8 * word.BytesPerWord)
}

// Run implements Model.
func (g *Guarded) Run(t *workload.Trace) Result {
	res := Result{Model: g.Name(), PortsPerBank: 0}
	cache := defaultCachelet()
	tlb := defaultTLB()
	for _, r := range t.Refs {
		res.Refs++
		res.Cycles += g.c.CacheHit
		if cache.access(r.VAddr, 0) { // one shared cache: in-cache sharing works
			continue
		}
		res.CacheMisses++
		res.Cycles += g.c.CacheMissMem
		// Translation happens only here, below the cache.
		if _, hit := tlb.Lookup(r.VAddr, vm.GlobalASID); !hit {
			res.TLBMisses++
			res.Cycles += g.c.walkCycles()
			tlb.Insert(r.VAddr, vm.GlobalASID, vm.PTE{Valid: true})
		}
	}
	// One shared page table; no per-domain state at all.
	res.TableBytes = 0
	return res
}

// PageNoASID models separate per-process address spaces without
// address-space identifiers: every domain switch must flush the TLB and
// purge the virtually-addressed cache (Sec 5.1).
type PageNoASID struct{ c Costs }

// NewPageNoASID returns the flush-on-switch paging model.
func NewPageNoASID(c Costs) *PageNoASID { return &PageNoASID{c} }

// Name implements Model.
func (p *PageNoASID) Name() string { return "page-noasid" }

// Run implements Model.
func (p *PageNoASID) Run(t *workload.Trace) Result {
	res := Result{Model: p.Name(), PortsPerBank: 0}
	cache := defaultCachelet()
	tlb := defaultTLB()
	cur := -1
	for _, r := range t.Refs {
		res.Refs++
		if r.Domain != cur {
			if cur >= 0 {
				tlb.Flush()
				cache.flush()
				res.TLBFlushes++
				res.CacheFlushes++
				res.Cycles += p.c.SwitchHeavy
				res.SwitchCycles += p.c.SwitchHeavy
			}
			cur = r.Domain
		}
		res.Cycles += p.c.CacheHit
		if cache.access(r.VAddr, 0) {
			continue
		}
		res.CacheMisses++
		res.Cycles += p.c.CacheMissMem
		if _, hit := tlb.Lookup(r.VAddr, vm.GlobalASID); !hit {
			res.TLBMisses++
			res.Cycles += p.c.walkCycles()
			tlb.Insert(r.VAddr, vm.GlobalASID, vm.PTE{Valid: true})
		}
	}
	dp, _ := t.Pages()
	res.TableBytes = uint64(dp) * p.c.PTEBytes // one PTE per (process, page)
	return res
}

// PageASID models separate address spaces with ASIDs: no flushes, but
// cache lines are tagged by ASID, so "no data can be shared in a
// virtually addressed cache using this system" (Sec 5.1) — each domain
// warms its own copies — and each process still owns a page table.
type PageASID struct{ c Costs }

// NewPageASID returns the ASID paging model.
func NewPageASID(c Costs) *PageASID { return &PageASID{c} }

// Name implements Model.
func (p *PageASID) Name() string { return "page-asid" }

// Run implements Model.
func (p *PageASID) Run(t *workload.Trace) Result {
	res := Result{Model: p.Name(), PortsPerBank: 0}
	cache := defaultCachelet()
	tlb := defaultTLB()
	cur := -1
	for _, r := range t.Refs {
		res.Refs++
		if r.Domain != cur {
			if cur >= 0 {
				res.Cycles += p.c.SwitchLight
				res.SwitchCycles += p.c.SwitchLight
			}
			cur = r.Domain
		}
		asid := uint16(r.Domain + 1)
		res.Cycles += p.c.CacheHit
		if cache.access(r.VAddr, asid) { // partitioned by ASID: no sharing
			continue
		}
		res.CacheMisses++
		res.Cycles += p.c.CacheMissMem
		if _, hit := tlb.Lookup(r.VAddr, asid); !hit {
			res.TLBMisses++
			res.Cycles += p.c.walkCycles()
			tlb.Insert(r.VAddr, asid, vm.PTE{Valid: true})
		}
	}
	dp, _ := t.Pages()
	res.TableBytes = uint64(dp) * p.c.PTEBytes
	return res
}

// DomainPage models Koldinger et al.'s single-address-space design
// [17]: one shared page table and cache, plus an independent per-domain
// protection table cached in a PLB "probed in parallel with the
// virtually addressed cache" on *every* access (Sec 5.1).
type DomainPage struct{ c Costs }

// NewDomainPage returns the Domain-Page model.
func NewDomainPage(c Costs) *DomainPage { return &DomainPage{c} }

// Name implements Model.
func (d *DomainPage) Name() string { return "domain-page" }

// Run implements Model.
func (d *DomainPage) Run(t *workload.Trace) Result {
	// The PLB must be probed on every access, so a multi-banked cache
	// needs one PLB port per bank — the replication cost guarded
	// pointers avoid.
	res := Result{Model: d.Name(), PortsPerBank: 1}
	cache := defaultCachelet()
	tlb := defaultTLB()
	plb := vm.NewTLB(64)
	cur := -1
	for _, r := range t.Refs {
		res.Refs++
		if r.Domain != cur {
			// PLB entries are domain-tagged: switches are cheap.
			cur = r.Domain
		}
		asid := uint16(r.Domain + 1)
		res.Cycles += d.c.CacheHit
		// PLB probe in parallel with the cache; a miss costs a
		// protection-table access.
		if _, hit := plb.Lookup(r.VAddr, asid); !hit {
			res.PLBMisses++
			res.Cycles += d.c.CacheMissMem
			plb.Insert(r.VAddr, asid, vm.PTE{Valid: true})
		}
		if cache.access(r.VAddr, 0) { // shared cache: sharing works
			continue
		}
		res.CacheMisses++
		res.Cycles += d.c.CacheMissMem
		if _, hit := tlb.Lookup(r.VAddr, vm.GlobalASID); !hit {
			res.TLBMisses++
			res.Cycles += d.c.walkCycles()
			tlb.Insert(r.VAddr, vm.GlobalASID, vm.PTE{Valid: true})
		}
	}
	dp, _ := t.Pages()
	res.TableBytes = uint64(dp) * d.c.ProtBytes // per-(domain,page) protection entries
	return res
}

// PageGroup models HP PA-RISC protection [18]: access control at page
// granularity via page-group identifiers held in the TLB and compared
// against four special registers on every memory reference — which is
// why the TLB must be consulted (and thus ported) on every access,
// "prohibitively expensive for a multi-banked cache" (Sec 5.1).
type PageGroup struct{ c Costs }

// NewPageGroup returns the PA-RISC page-group model.
func NewPageGroup(c Costs) *PageGroup { return &PageGroup{c} }

// Name implements Model.
func (p *PageGroup) Name() string { return "pa-risc-groups" }

// Run implements Model.
func (p *PageGroup) Run(t *workload.Trace) Result {
	res := Result{Model: p.Name(), PortsPerBank: 1}
	cache := defaultCachelet()
	tlb := defaultTLB()
	cur := -1
	for _, r := range t.Refs {
		res.Refs++
		if r.Domain != cur {
			if cur >= 0 {
				// Reload the four page-group registers.
				res.Cycles += p.c.SwitchLight
				res.SwitchCycles += p.c.SwitchLight
			}
			cur = r.Domain
		}
		res.Cycles += p.c.CacheHit
		// The TLB is consulted on *every* reference (protection lives
		// in it), not just on misses.
		if _, hit := tlb.Lookup(r.VAddr, vm.GlobalASID); !hit {
			res.TLBMisses++
			res.Cycles += p.c.walkCycles()
			tlb.Insert(r.VAddr, vm.GlobalASID, vm.PTE{Valid: true})
		}
		res.ExtraInstructions += 4 // four page-group comparisons
		if cache.access(r.VAddr, 0) {
			continue
		}
		res.CacheMisses++
		res.Cycles += p.c.CacheMissMem
	}
	_, pages := t.Pages()
	res.TableBytes = uint64(pages) * p.c.PTEBytes // group ids ride in the shared table
	return res
}

// CapTable models traditional hardware capability systems (IBM
// System/38 [13], Intel 432 [24]): every reference first translates the
// capability to a virtual address through a capability/segment table —
// "two levels of translation", the latency that "has prevented
// traditional capabilities from becoming a widely-used protection
// method" (Sec 5.3). A small capability cache keeps the common case to
// one extra serialized cycle.
type CapTable struct{ c Costs }

// NewCapTable returns the two-level capability model.
func NewCapTable(c Costs) *CapTable { return &CapTable{c} }

// Name implements Model.
func (m *CapTable) Name() string { return "cap-table" }

// Run implements Model.
func (m *CapTable) Run(t *workload.Trace) Result {
	res := Result{Model: m.Name(), PortsPerBank: 1}
	cache := defaultCachelet()
	tlb := defaultTLB()
	capCache := vm.NewTLB(32) // cached capability→segment translations
	cur := -1
	for _, r := range t.Refs {
		res.Refs++
		if r.Domain != cur {
			if cur >= 0 {
				res.Cycles += m.c.SwitchHeavy // C-list base swap
				res.SwitchCycles += m.c.SwitchHeavy
			}
			cur = r.Domain
		}
		asid := uint16(r.Domain + 1)
		// Level 1: capability → virtual address, serialized before the
		// cache access. Approximate one capability per touched page.
		if _, hit := capCache.Lookup(r.VAddr, asid); hit {
			res.Cycles += m.c.CapLookup
		} else {
			res.Cycles += m.c.CacheMissMem // capability table in memory
			res.ExtraInstructions++
			capCache.Insert(r.VAddr, asid, vm.PTE{Valid: true})
		}
		// Level 2: the ordinary access.
		res.Cycles += m.c.CacheHit
		if cache.access(r.VAddr, 0) {
			continue
		}
		res.CacheMisses++
		res.Cycles += m.c.CacheMissMem
		if _, hit := tlb.Lookup(r.VAddr, vm.GlobalASID); !hit {
			res.TLBMisses++
			res.Cycles += m.c.walkCycles()
			tlb.Insert(r.VAddr, vm.GlobalASID, vm.PTE{Valid: true})
		}
	}
	dp, _ := t.Pages()
	res.TableBytes = uint64(dp) * m.c.SegDescBytes // per-process C-lists
	return res
}

// SFI models software fault isolation [25]: the same single address
// space and hardware as guarded pointers, but every unproven memory
// reference carries inserted check instructions — "the overhead will be
// paid for every reference" (Sec 5.4).
type SFI struct{ c Costs }

// NewSFI returns the sandboxing model.
func NewSFI(c Costs) *SFI { return &SFI{c} }

// Name implements Model.
func (s *SFI) Name() string { return "sfi-sandbox" }

// Run implements Model.
func (s *SFI) Run(t *workload.Trace) Result {
	res := Result{Model: s.Name(), PortsPerBank: 0}
	cache := defaultCachelet()
	tlb := defaultTLB()
	for _, r := range t.Refs {
		res.Refs++
		// Inserted check/sandbox instructions, one cycle each.
		res.ExtraInstructions += s.c.SFICheckInstrs
		res.Cycles += s.c.SFICheckInstrs
		res.Cycles += s.c.CacheHit
		if cache.access(r.VAddr, 0) {
			continue
		}
		res.CacheMisses++
		res.Cycles += s.c.CacheMissMem
		if _, hit := tlb.Lookup(r.VAddr, vm.GlobalASID); !hit {
			res.TLBMisses++
			res.Cycles += s.c.walkCycles()
			tlb.Insert(r.VAddr, vm.GlobalASID, vm.PTE{Valid: true})
		}
	}
	res.TableBytes = 0
	return res
}
