// Package baseline implements trace-driven models of the protection
// schemes the paper compares against in Sec 5, plus guarded pointers
// themselves, all sharing one cycle vocabulary so their context-switch,
// per-reference, and storage costs are directly comparable:
//
//   - Guarded pointers (the paper): no per-reference protection cost,
//     translation below a shared virtually-addressed cache, zero-cost
//     domain switches, one shared page table.
//   - Separate address spaces without ASIDs: TLB and virtual cache
//     flushed on every protection-domain switch.
//   - Separate address spaces with ASIDs: no flushes, but the cache is
//     effectively partitioned by ASID (synonyms forbid in-cache
//     sharing) and each process carries its own page table.
//   - Domain-Page protection [17]: single address space plus a
//     per-domain protection table cached by a PLB probed on every
//     access.
//   - HP PA-RISC page groups [18]: protection resolved via the TLB and
//     four page-group registers compared on every access, forcing a
//     TLB port per cache bank.
//   - Traditional capability tables (System/38, i432 style): an extra
//     serialized capability-to-segment translation on every reference.
//   - Software fault isolation [25]: extra check instructions inserted
//     before every unproven memory reference.
//
// Each model consumes a workload.Trace and reports cycles, event
// counters and the protection/translation storage it needs — the
// quantities behind experiments E6, E7, E10 and E13.
package baseline

import (
	"repro/internal/vm"
	"repro/internal/workload"
)

// Costs fixes the shared cycle and storage prices. They deliberately
// favour nobody: every model pays the same for cache hits, misses and
// page-table walks; the schemes differ only in *which* events their
// design forces.
type Costs struct {
	CacheHit     uint64 // cycles for a cache hit
	CacheMissMem uint64 // additional cycles for an external memory access
	WalkRefs     uint64 // memory references per page-table (or table) walk

	SwitchHeavy uint64 // install a new page table: base swap + pipeline drain
	SwitchLight uint64 // reload a couple of registers (ASID, page groups)

	SFICheckInstrs uint64 // inserted instructions per unproven memory ref
	CapLookup      uint64 // serialized capability-table access on a cap-cache hit

	PTEBytes     uint64 // per page-table entry
	ProtBytes    uint64 // per protection-table entry (Domain-Page)
	SegDescBytes uint64 // per segment/capability descriptor
}

// DefaultCosts returns the parameters used throughout EXPERIMENTS.md.
func DefaultCosts() Costs {
	return Costs{
		CacheHit:       1,
		CacheMissMem:   10,
		WalkRefs:       3,
		SwitchHeavy:    24,
		SwitchLight:    4,
		SFICheckInstrs: 2,
		CapLookup:      1,
		PTEBytes:       8,
		ProtBytes:      8,
		SegDescBytes:   16,
	}
}

// Result is the common report of a model run.
type Result struct {
	Model string
	Refs  uint64

	Cycles       uint64
	SwitchCycles uint64 // portion of Cycles spent installing domains

	CacheMisses  uint64
	CacheFlushes uint64
	TLBMisses    uint64
	TLBFlushes   uint64
	PLBMisses    uint64

	ExtraInstructions uint64 // software checks (SFI) or table ops
	TableBytes        uint64 // protection/translation storage beyond one shared page table
	PortsPerBank      int    // lookaside ports required per cache bank (replication pressure, Sec 5.1)
}

// CPR returns cycles per reference.
func (r Result) CPR() float64 {
	if r.Refs == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Refs)
}

// Model is a protection-scheme cost model.
type Model interface {
	Name() string
	Run(t *workload.Trace) Result
}

// --- shared machinery --------------------------------------------------

// cachelet is the small set-associative cache model every scheme runs
// behind, optionally partitioning by an address-space identifier (which
// is how ASID schemes lose in-cache sharing).
type cachelet struct {
	sets      int
	ways      int
	lineShift uint
	tags      [][]cacheline
	clock     uint64
}

type cacheline struct {
	tag   uint64
	asid  uint16
	valid bool
	used  uint64
}

func newCachelet(sets, ways int, lineShift uint) *cachelet {
	c := &cachelet{sets: sets, ways: ways, lineShift: lineShift}
	c.tags = make([][]cacheline, sets)
	for i := range c.tags {
		c.tags[i] = make([]cacheline, ways)
	}
	return c
}

// access returns whether (addr, asid) hits, inserting on miss. The set
// index is hashed (as large real caches do) so page-strided workloads
// measure protection costs rather than pathological set conflicts.
func (c *cachelet) access(addr uint64, asid uint16) bool {
	c.clock++
	line := addr >> c.lineShift
	set := c.tags[int(line*0x9e3779b1>>16)%c.sets]
	victim, oldest := 0, ^uint64(0)
	for i := range set {
		if set[i].valid && set[i].tag == line && set[i].asid == asid {
			set[i].used = c.clock
			return true
		}
		if !set[i].valid {
			victim, oldest = i, 0
			continue
		}
		if set[i].used < oldest {
			victim, oldest = i, set[i].used
		}
	}
	set[victim] = cacheline{tag: line, asid: asid, valid: true, used: c.clock}
	return false
}

func (c *cachelet) flush() {
	for i := range c.tags {
		for j := range c.tags[i] {
			c.tags[i][j].valid = false
		}
	}
}

// defaultCachelet matches the per-model cache budget used in the
// experiments: 1024 sets × 2 ways × 32-byte lines = 64KB.
func defaultCachelet() *cachelet { return newCachelet(1024, 2, 5) }

// defaultTLB matches the 64-entry TLB of the machine model.
func defaultTLB() *vm.TLB { return vm.NewTLB(64) }

// walkCycles is the price of one table walk.
func (c Costs) walkCycles() uint64 { return c.WalkRefs * c.CacheMissMem }

// All returns one instance of every model, in presentation order.
func All(c Costs) []Model {
	return []Model{
		NewGuarded(c),
		NewPageNoASID(c),
		NewPageASID(c),
		NewDomainPage(c),
		NewPageGroup(c),
		NewCapTable(c),
		NewSFI(c),
	}
}
