package baseline

import (
	"testing"

	"repro/internal/workload"
)

func interleave(domains, quantum int) *workload.Trace {
	return workload.Interleaved(domains, 200, quantum, 4, 1<<30)
}

func TestAllModelsRunAndCount(t *testing.T) {
	tr := interleave(4, 1)
	for _, m := range All(DefaultCosts()) {
		res := m.Run(tr)
		if res.Model != m.Name() || res.Model == "" {
			t.Errorf("model name mismatch: %q vs %q", res.Model, m.Name())
		}
		if res.Refs != uint64(len(tr.Refs)) {
			t.Errorf("%s: refs = %d, want %d", m.Name(), res.Refs, len(tr.Refs))
		}
		if res.Cycles < res.Refs {
			t.Errorf("%s: cycles %d < refs %d", m.Name(), res.Cycles, res.Refs)
		}
		if res.CPR() <= 0 {
			t.Errorf("%s: CPR = %v", m.Name(), res.CPR())
		}
	}
}

func TestGuardedBeatsFlushOnInterleaving(t *testing.T) {
	// The headline claim: under cycle-by-cycle multi-domain
	// interleaving, guarded pointers cost nothing extra while
	// flush-based paging collapses.
	tr := interleave(8, 1)
	c := DefaultCosts()
	g := NewGuarded(c).Run(tr)
	f := NewPageNoASID(c).Run(tr)
	if g.Cycles >= f.Cycles {
		t.Fatalf("guarded %d !< flush %d", g.Cycles, f.Cycles)
	}
	if f.Cycles < 2*g.Cycles {
		t.Errorf("flush only %.2fx slower — switch cost not visible", float64(f.Cycles)/float64(g.Cycles))
	}
	if g.SwitchCycles != 0 {
		t.Error("guarded model charged switch cycles")
	}
	if f.TLBFlushes == 0 || f.CacheFlushes == 0 {
		t.Error("flush model did not flush")
	}
}

func TestGuardedFlatInDomainCount(t *testing.T) {
	// Guarded CPR must stay ~flat from 1 to 12 domains (same total
	// refs); flush-based CPR must grow.
	c := DefaultCosts()
	g1 := NewGuarded(c).Run(interleave(1, 1)).CPR()
	g12 := NewGuarded(c).Run(interleave(12, 1)).CPR()
	if g12 > g1*1.6 {
		t.Errorf("guarded CPR grew from %.2f to %.2f across domains", g1, g12)
	}
	f1 := NewPageNoASID(c).Run(interleave(1, 1)).CPR()
	f12 := NewPageNoASID(c).Run(interleave(12, 1)).CPR()
	if f12 < f1*2 {
		t.Errorf("flush CPR %.2f → %.2f: switch cost invisible", f1, f12)
	}
}

func TestASIDAvoidsFlushesButLosesSharing(t *testing.T) {
	c := DefaultCosts()
	tr := interleave(4, 1)
	a := NewPageASID(c).Run(tr)
	if a.TLBFlushes != 0 || a.CacheFlushes != 0 {
		t.Error("ASID model flushed")
	}
	// On a *shared* working set, ASID caching duplicates lines: more
	// misses than the shared-cache guarded model.
	sh := workload.Shared(4, 8, 50, 1<<30)
	aShared := NewPageASID(c).Run(sh)
	gShared := NewGuarded(c).Run(sh)
	if aShared.CacheMisses <= gShared.CacheMisses {
		t.Errorf("ASID misses %d !> guarded %d on shared data",
			aShared.CacheMisses, gShared.CacheMisses)
	}
}

func TestDomainPageCloseToGuardedButNeedsPLB(t *testing.T) {
	c := DefaultCosts()
	tr := interleave(4, 1)
	d := NewDomainPage(c).Run(tr)
	g := NewGuarded(c).Run(tr)
	// Domain-Page is the viable alternative (Sec 5.1): no flushes,
	// modest overhead...
	if d.Cycles > 2*g.Cycles {
		t.Errorf("domain-page %d vs guarded %d: unexpectedly bad", d.Cycles, g.Cycles)
	}
	// ...but it needs a PLB port per bank and a protection table;
	// guarded pointers need neither.
	if d.PortsPerBank == 0 {
		t.Error("domain-page reported no PLB ports")
	}
	if d.TableBytes == 0 {
		t.Error("domain-page reported no protection table")
	}
	if d.PLBMisses == 0 {
		t.Error("no PLB misses recorded")
	}
	if g.PortsPerBank != 0 || g.TableBytes != 0 {
		t.Error("guarded model reported lookaside/table costs")
	}
}

func TestPageGroupTLBOnEveryAccess(t *testing.T) {
	c := DefaultCosts()
	tr := interleave(2, 1)
	p := NewPageGroup(c).Run(tr)
	if p.PortsPerBank == 0 {
		t.Error("page groups must port the TLB per bank")
	}
	if p.ExtraInstructions != 4*p.Refs {
		t.Errorf("comparator ops = %d, want %d", p.ExtraInstructions, 4*p.Refs)
	}
}

func TestCapTableTwoLevelPenalty(t *testing.T) {
	c := DefaultCosts()
	tr := workload.ArraySweep(0, 1<<30, 10000, 8, false)
	cap := NewCapTable(c).Run(tr)
	g := NewGuarded(c).Run(tr)
	// Every reference pays at least the extra serialized lookup.
	if cap.Cycles < g.Cycles+uint64(float64(cap.Refs)*0.9) {
		t.Errorf("cap-table %d vs guarded %d: two-level cost missing", cap.Cycles, g.Cycles)
	}
	if cap.TableBytes == 0 {
		t.Error("no capability table storage reported")
	}
}

func TestSFIPerRefOverhead(t *testing.T) {
	c := DefaultCosts()
	tr := workload.ArraySweep(0, 1<<30, 5000, 8, false)
	s := NewSFI(c).Run(tr)
	g := NewGuarded(c).Run(tr)
	if s.ExtraInstructions != c.SFICheckInstrs*uint64(len(tr.Refs)) {
		t.Errorf("extra instructions = %d", s.ExtraInstructions)
	}
	if s.Cycles != g.Cycles+s.ExtraInstructions {
		t.Errorf("SFI cycles %d, guarded %d + checks %d",
			s.Cycles, g.Cycles, s.ExtraInstructions)
	}
}

func TestTableBytesNxMGrowth(t *testing.T) {
	// Sec 5.1: n pages shared by m processes cost n×m PTEs in
	// page-based schemes; guarded pointers cost zero table bytes.
	c := DefaultCosts()
	for _, m := range []int{2, 4, 8} {
		tr := workload.Shared(m, 16, 2, 1<<30)
		p := NewPageNoASID(c).Run(tr)
		want := uint64(16*m) * c.PTEBytes
		if p.TableBytes != want {
			t.Errorf("m=%d: TableBytes = %d, want %d", m, p.TableBytes, want)
		}
		if NewGuarded(c).Run(tr).TableBytes != 0 {
			t.Error("guarded pays table bytes")
		}
	}
}

func TestTagOverheadBytes(t *testing.T) {
	if got := TagOverheadBytes(64 << 20); got != 1<<20 {
		t.Errorf("TagOverheadBytes(64MB) = %d, want 1MB", got)
	}
	ratio := float64(TagOverheadBytes(8<<20)) / float64(8<<20)
	if ratio < 0.015 || ratio > 0.016 {
		t.Errorf("tag ratio = %v", ratio)
	}
}

func TestCacheletLRUAndFlush(t *testing.T) {
	c := newCachelet(1, 2, 5) // one set, two ways
	if c.access(0x00, 0) {
		t.Error("cold hit")
	}
	c.access(0x20, 0)
	c.access(0x00, 0) // refresh line 0
	c.access(0x40, 0) // evicts 0x20
	if !c.access(0x00, 0) {
		t.Error("MRU line evicted")
	}
	if c.access(0x20, 0) {
		t.Error("LRU line survived")
	}
	c.flush()
	if c.access(0x00, 0) {
		t.Error("hit after flush")
	}
}

func TestCacheletASIDPartitioning(t *testing.T) {
	c := defaultCachelet()
	c.access(0x1000, 1)
	if c.access(0x1000, 2) {
		t.Error("cross-ASID hit")
	}
	if !c.access(0x1000, 1) {
		t.Error("same-ASID miss")
	}
}

func TestResultCPRZeroRefs(t *testing.T) {
	if (Result{}).CPR() != 0 {
		t.Error("CPR of empty result")
	}
}
