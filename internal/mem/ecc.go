// SECDED error-correcting code over tagged words.
//
// The parity plane of mem.go detects a decayed word; it cannot repair
// one. This file upgrades the memory system to a single-error-correct,
// double-error-detect (SECDED) Hamming code covering all 65 stored bits
// of a tagged word — the 64 data bits plus the tag. Eight check bits
// per word (seven Hamming syndrome bits plus one overall-parity bit)
// are held in a separate check plane, mirroring how the tag plane
// shadows the data plane.
//
// A codeword has 73 positions, numbered 1..72 in the classic Hamming
// layout: the seven power-of-two positions (1,2,4,...,64) hold check
// bits, the remaining 65 positions hold the data and tag bits in
// address order, and position 0 stands for the overall parity bit.
// The syndrome of a received word is the XOR of the positions of all
// set bits; a single flipped bit anywhere — data, tag, check, or the
// parity bit itself — yields its own position as the syndrome, so the
// scrubber (or a demand read) can put it back. Two flipped bits leave
// overall parity even with a non-zero syndrome: detected, not
// correctable, and surfaced as a machine check exactly like the
// parity plane's *ParityError.
package mem

import (
	"fmt"
	"math/bits"

	"repro/internal/word"
)

// eccBits is the number of stored bits the code covers: 64 data + tag.
const eccBits = 65

// dataPos maps data-bit index (0..63 data, 64 tag) to its codeword
// position; posToData is the inverse (-1 for check-bit positions).
var (
	dataPos   [eccBits]uint8
	posToData [73]int8
	// synTab[b][v] is the syndrome contribution of data byte b holding
	// value v — XOR of dataPos[8b+j] over the set bits j of v — so a
	// word's syndrome costs eight table lookups instead of 65 shifts.
	synTab [8][256]uint8
)

func init() {
	for i := range posToData {
		posToData[i] = -1
	}
	pos := uint8(1)
	for i := 0; i < eccBits; i++ {
		for pos&(pos-1) == 0 { // skip power-of-two (check) positions
			pos++
		}
		dataPos[i] = pos
		posToData[pos] = int8(i)
		pos++
	}
	for b := 0; b < 8; b++ {
		for v := 0; v < 256; v++ {
			var s uint8
			for j := 0; j < 8; j++ {
				if v>>j&1 != 0 {
					s ^= dataPos[8*b+j]
				}
			}
			synTab[b][v] = s
		}
	}
}

// ECCStats counts error-correction events.
type ECCStats struct {
	// Corrected is the number of single-bit errors repaired in place —
	// by a demand read, a background scrub sweep, or a full Scrub.
	Corrected uint64
	// DoubleBit is the number of uncorrectable double-bit detections
	// surfaced as *ECCError machine checks.
	DoubleBit uint64
	// ScrubWords is the number of words examined by ScrubStep sweeps.
	ScrubWords uint64
}

// ECCError reports a word whose stored bits fail the SECDED check in a
// way correction cannot repair (two or more flipped bits). It is the
// double-error analog of *ParityError and, like it, an explicit
// corruption-detection signal.
type ECCError struct {
	Addr uint64 // physical byte address of the corrupted word
}

func (e *ECCError) Error() string {
	return fmt.Sprintf("mem: uncorrectable ECC error at %#x: multi-bit corruption", e.Addr)
}

// CorruptionDetected marks this error as an explicit
// corruption-detection signal for the fault-injection audit.
func (e *ECCError) CorruptionDetected() bool { return true }

// synOf returns the 7-bit Hamming syndrome of the data+tag bits of w.
func synOf(w word.Word) uint8 {
	s := synTab[0][byte(w.Bits)] ^
		synTab[1][byte(w.Bits>>8)] ^
		synTab[2][byte(w.Bits>>16)] ^
		synTab[3][byte(w.Bits>>24)] ^
		synTab[4][byte(w.Bits>>32)] ^
		synTab[5][byte(w.Bits>>40)] ^
		synTab[6][byte(w.Bits>>48)] ^
		synTab[7][byte(w.Bits>>56)]
	if w.Tag {
		s ^= dataPos[64]
	}
	return s
}

// checkByte encodes w's SECDED check bits: the low seven bits hold the
// Hamming check bits (equal to the data syndrome, cancelling it), the
// top bit holds overall parity over the whole codeword.
func checkByte(w word.Word) uint8 {
	c := synOf(w)
	p := uint(bits.OnesCount64(w.Bits)) + uint(bits.OnesCount8(c))
	if w.Tag {
		p++
	}
	return c | uint8(p&1)<<7
}

// EnableECC turns on the SECDED check plane, computed from the current
// contents (enabling on a live memory is always consistent). It
// supersedes the detect-only parity plane: at most one of the two is
// active, and ECC wins.
func (m *Memory) EnableECC() {
	m.parity = nil
	m.ecc = make([]uint8, len(m.data))
	for i := range m.data {
		m.ecc[i] = checkByte(word.Word{Bits: m.data[i], Tag: m.tagAt(uint64(i))})
	}
}

// ECCEnabled reports whether the SECDED plane is active.
func (m *Memory) ECCEnabled() bool { return m.ecc != nil }

// ECCStats returns a copy of the error-correction counters.
func (m *Memory) ECCStats() ECCStats { return m.eccStats }

// verifyECC checks word i against its check byte, repairing a
// single-bit error in place (data, tag, check bits, or the overall
// parity bit). It reports whether the word is now good; false means an
// uncorrectable double-bit error was detected.
func (m *Memory) verifyECC(i uint64) bool {
	w := word.Word{Bits: m.data[i], Tag: m.tagAt(i)}
	cb := m.ecc[i]
	s := synOf(w) ^ cb&0x7f
	p := uint(bits.OnesCount64(w.Bits)) + uint(bits.OnesCount8(cb))
	if w.Tag {
		p++
	}
	odd := p&1 != 0
	switch {
	case s == 0 && !odd:
		return true // clean
	case !odd:
		// Even overall parity with a non-zero syndrome: two bits flipped.
		m.eccStats.DoubleBit++
		return false
	case s == 0 || s&(s-1) == 0:
		// The overall parity bit (s==0) or a Hamming check bit flipped;
		// the data is intact — rebuild the check byte.
		m.ecc[i] = checkByte(w)
	case int(s) < len(posToData) && posToData[s] >= 0:
		// A data or tag bit flipped: the syndrome names its position.
		if d := posToData[s]; d < 64 {
			m.data[i] ^= 1 << uint(d)
		} else {
			m.tags[i/64] ^= 1 << (i % 64)
		}
	default:
		// Syndrome outside the codeword: at least two bits flipped.
		m.eccStats.DoubleBit++
		return false
	}
	m.eccStats.Corrected++
	return true
}

// ScrubStep is the background scrubber's incremental sweep: it examines
// the next n words after the rotating cursor, corrects any single-bit
// errors found, and returns how many words it repaired. Double-bit
// errors are left in place for a demand read (or full Scrub) to trap —
// the scrubber is a repair engine, not a fault-reporting path. A no-op
// unless ECC is enabled.
func (m *Memory) ScrubStep(n int) int {
	if m.ecc == nil || n <= 0 {
		return 0
	}
	if n > len(m.data) {
		n = len(m.data)
	}
	before := m.eccStats.Corrected
	for j := 0; j < n; j++ {
		i := m.scrubCursor
		m.scrubCursor++
		if m.scrubCursor >= uint64(len(m.data)) {
			m.scrubCursor = 0
		}
		m.verifyECC(i)
	}
	m.eccStats.ScrubWords += uint64(n)
	return int(m.eccStats.Corrected - before)
}
