package mem

import "fmt"

// FrameAllocator hands out fixed-size physical page frames from a
// Memory. Physical space "is allocated on a page-by-page basis,
// independent of segmentation" (Sec 4.2), which is why power-of-two
// segment rounding wastes little physical memory: only the touched pages
// of a segment ever get frames.
type FrameAllocator struct {
	frameSize uint64
	free      []uint64 // physical base addresses, LIFO
	total     int
}

// NewFrameAllocator covers the whole of m with frames of frameSize bytes
// (a power of two dividing the memory size).
func NewFrameAllocator(m *Memory, frameSize uint64) (*FrameAllocator, error) {
	if frameSize == 0 || frameSize&(frameSize-1) != 0 {
		return nil, fmt.Errorf("mem: frame size %d is not a power of two", frameSize)
	}
	if m.Size()%frameSize != 0 {
		return nil, fmt.Errorf("mem: memory size %d not a multiple of frame size %d", m.Size(), frameSize)
	}
	n := m.Size() / frameSize
	fa := &FrameAllocator{frameSize: frameSize, total: int(n)}
	// Hand out low addresses first: push in reverse so the LIFO pops
	// ascending, which keeps test output and memory dumps readable.
	for i := int64(n) - 1; i >= 0; i-- {
		fa.free = append(fa.free, uint64(i)*frameSize)
	}
	return fa, nil
}

// FrameSize returns the frame size in bytes.
func (fa *FrameAllocator) FrameSize() uint64 { return fa.frameSize }

// Free returns the number of free frames.
func (fa *FrameAllocator) Free() int { return len(fa.free) }

// Total returns the total number of frames.
func (fa *FrameAllocator) Total() int { return fa.total }

// Alloc returns the physical base address of a free frame.
func (fa *FrameAllocator) Alloc() (uint64, error) {
	if len(fa.free) == 0 {
		return 0, fmt.Errorf("mem: out of physical frames (%d in use)", fa.total)
	}
	f := fa.free[len(fa.free)-1]
	fa.free = fa.free[:len(fa.free)-1]
	return f, nil
}

// Release returns a frame to the allocator. The caller is responsible
// for zeroing it (Memory.ZeroRange) before reuse across protection
// domains.
func (fa *FrameAllocator) Release(paddr uint64) error {
	if paddr%fa.frameSize != 0 {
		return fmt.Errorf("mem: release of unaligned frame %#x", paddr)
	}
	if len(fa.free) >= fa.total {
		return fmt.Errorf("mem: double release of frame %#x", paddr)
	}
	fa.free = append(fa.free, paddr)
	return nil
}

// Claim removes the specific frame at paddr from the free list — the
// restore path for checkpointed page placements. It fails if the frame
// is not free.
func (fa *FrameAllocator) Claim(paddr uint64) error {
	if paddr%fa.frameSize != 0 {
		return fmt.Errorf("mem: claim of unaligned frame %#x", paddr)
	}
	for i, f := range fa.free {
		if f == paddr {
			fa.free = append(fa.free[:i], fa.free[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("mem: frame %#x is not free", paddr)
}
