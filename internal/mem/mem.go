// Package mem models the physical memory of a guarded-pointer machine:
// a word-oriented store in which every 64-bit word carries the extra tag
// bit (Sec 4.1: "a single tag bit is required on all memory words"). The
// package also provides the physical frame allocator used by the paging
// layer.
//
// Physical memory is word-addressable through byte addresses; the
// machine's loads and stores operate on naturally aligned 64-bit words,
// matching the M-Machine's 64-bit data types (Sec 3).
package mem

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/word"
)

// Sentinel errors for the two ways a physical access can be malformed.
// The accessor functions return these unwrapped on their fast paths —
// no fmt formatting, no allocation — and attach the address detail via
// *AddrError only once an error actually escapes to a caller.
var (
	// ErrUnaligned reports a word access whose address is not
	// word-aligned.
	ErrUnaligned = errors.New("unaligned word access")
	// ErrOutOfRange reports an access beyond the end of physical
	// memory.
	ErrOutOfRange = errors.New("beyond physical memory")
)

// AddrError decorates a sentinel cause with the faulting physical
// address and operation. It is built only on the cold path (when an
// access actually fails); errors.Is sees through it to the sentinel.
type AddrError struct {
	Op   string // "read" or "write"
	Addr uint64 // faulting physical byte address
	Mem  uint64 // physical memory size in bytes
	Err  error  // ErrUnaligned or ErrOutOfRange
}

func (e *AddrError) Error() string {
	if e.Err == ErrOutOfRange {
		return fmt.Sprintf("mem: %s at %#x: %v (%d bytes)", e.Op, e.Addr, e.Err, e.Mem)
	}
	return fmt.Sprintf("mem: %s at %#x: %v", e.Op, e.Addr, e.Err)
}

func (e *AddrError) Unwrap() error { return e.Err }

// ParityError reports that a word read observed stored bits inconsistent
// with the word's parity bit — the memory-system analog of an ECC/parity
// machine check. It is only ever produced after EnableParity, and only
// when the word was altered outside the normal write path (a soft error,
// modeled by FlipBit).
type ParityError struct {
	Addr uint64 // physical byte address of the corrupted word
}

func (e *ParityError) Error() string {
	return fmt.Sprintf("mem: parity error at %#x: word corrupted outside the write path", e.Addr)
}

// CorruptionDetected marks this error as an explicit
// corruption-detection signal for the fault-injection audit
// (docs/ROBUSTNESS.md).
func (e *ParityError) CorruptionDetected() bool { return true }

// Memory is a tagged physical memory. The tag plane is stored separately
// from the data plane, one bit per word, exactly mirroring the hardware
// cost accounting of Sec 4.1.
type Memory struct {
	data []uint64
	tags []uint64 // bitmap, 1 bit per word
	// parity, when non-nil, is an even-parity bit per word covering the
	// 64 data bits plus the tag bit. Writes maintain it; reads verify it.
	// It models the paper's implicit reliability assumption — a tag bit
	// is only unforgeable if the memory system can tell a stored word
	// from a decayed one (see EnableParity).
	parity []uint64
	// ecc, when non-nil, is the SECDED check plane: one check byte per
	// word (see ecc.go). Mutually exclusive with parity; writes maintain
	// it, reads correct single-bit errors through it.
	ecc         []uint8
	eccStats    ECCStats
	scrubCursor uint64 // ScrubStep's rotating position
}

// New returns a physical memory of the given size in bytes, rounded up
// to a whole number of words. All words are untagged zero.
func New(sizeBytes uint64) *Memory {
	words := (sizeBytes + word.BytesPerWord - 1) / word.BytesPerWord
	return &Memory{
		data: make([]uint64, words),
		tags: make([]uint64, (words+63)/64),
	}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) * word.BytesPerWord }

// Words returns the memory size in words.
func (m *Memory) Words() uint64 { return uint64(len(m.data)) }

// index maps a physical byte address to its word index, returning a
// bare sentinel on failure so the hot path never formats anything.
func (m *Memory) index(paddr uint64) (uint64, error) {
	if paddr%word.BytesPerWord != 0 {
		return 0, ErrUnaligned
	}
	i := paddr / word.BytesPerWord
	if i >= uint64(len(m.data)) {
		return 0, ErrOutOfRange
	}
	return i, nil
}

// addrErr is the cold-path wrapper attaching address detail to a
// sentinel. Kept out of line so the accessors' fast paths stay small
// enough to inline.
//
//go:noinline
func (m *Memory) addrErr(op string, paddr uint64, err error) error {
	return &AddrError{Op: op, Addr: paddr, Mem: m.Size(), Err: err}
}

// ReadWord returns the tagged word at physical byte address paddr, which
// must be word-aligned and in range. With parity enabled, a word whose
// stored bits disagree with its parity bit returns a *ParityError
// instead of the (corrupted) value.
func (m *Memory) ReadWord(paddr uint64) (word.Word, error) {
	i, err := m.index(paddr)
	if err != nil {
		return word.Word{}, m.addrErr("read", paddr, err)
	}
	if m.ecc != nil && !m.verifyECC(i) {
		return word.Word{}, &ECCError{Addr: paddr}
	}
	w := word.Word{Bits: m.data[i], Tag: m.tagAt(i)}
	if m.parity != nil && m.parityAt(i) != wordParity(w) {
		return word.Word{}, &ParityError{Addr: paddr}
	}
	return w, nil
}

// WriteWord stores the tagged word w at physical byte address paddr.
func (m *Memory) WriteWord(paddr uint64, w word.Word) error {
	i, err := m.index(paddr)
	if err != nil {
		return m.addrErr("write", paddr, err)
	}
	m.data[i] = w.Bits
	m.setTag(i, w.Tag)
	if m.parity != nil {
		m.setParity(i, wordParity(w))
	}
	if m.ecc != nil {
		m.ecc[i] = checkByte(w)
	}
	return nil
}

func (m *Memory) tagAt(i uint64) bool { return m.tags[i/64]>>(i%64)&1 != 0 }

func (m *Memory) setTag(i uint64, t bool) {
	if t {
		m.tags[i/64] |= 1 << (i % 64)
	} else {
		m.tags[i/64] &^= 1 << (i % 64)
	}
}

// ZeroRange clears size bytes starting at paddr (word aligned), data and
// tags both — this is what frame recycling does before handing memory to
// a new owner so stale pointers can never leak between protection
// domains.
func (m *Memory) ZeroRange(paddr, size uint64) error {
	if size%word.BytesPerWord != 0 {
		return fmt.Errorf("mem: zero range size %#x not word aligned", size)
	}
	for off := uint64(0); off < size; off += word.BytesPerWord {
		if err := m.WriteWord(paddr+off, word.Word{}); err != nil {
			return err
		}
	}
	return nil
}

// TaggedWordsIn counts the tagged (pointer) words in the size-byte range
// at paddr. The address-space garbage collector uses this scan: "pointers
// are self identifying via the tag bit" (Sec 4.3).
func (m *Memory) TaggedWordsIn(paddr, size uint64) (int, error) {
	n := 0
	for off := uint64(0); off+word.BytesPerWord <= size; off += word.BytesPerWord {
		w, err := m.ReadWord(paddr + off)
		if err != nil {
			return n, err
		}
		if w.Tag {
			n++
		}
	}
	return n, nil
}

// ByteAt returns the byte at paddr (any alignment). The tag of the
// containing word is irrelevant to a byte read — bytes are data.
func (m *Memory) ByteAt(paddr uint64) (byte, error) {
	w, err := m.ReadWord(paddr &^ 7)
	if err != nil {
		return 0, err
	}
	return byte(w.Bits >> ((paddr & 7) * 8)), nil
}

// SetByteAt stores one byte at paddr. Overwriting any byte of a word
// that holds a guarded pointer CLEARS the word's tag: a partially
// overwritten capability is no capability at all, which is what makes
// byte stores safe to allow everywhere.
func (m *Memory) SetByteAt(paddr uint64, b byte) error {
	base := paddr &^ 7
	w, err := m.ReadWord(base)
	if err != nil {
		return err
	}
	shift := (paddr & 7) * 8
	w.Bits = w.Bits&^(uint64(0xff)<<shift) | uint64(b)<<shift
	w.Tag = false
	return m.WriteWord(base, w)
}

// OverheadBytes returns the storage cost of the tag plane in bytes
// (rounded up), the "small increase in the amount of memory required"
// of Sec 4.1.
func (m *Memory) OverheadBytes() uint64 { return uint64(len(m.tags)) * 8 }

// wordParity computes the even-parity bit over the 64 data bits and the
// tag bit of w.
func wordParity(w word.Word) bool {
	p := bits.OnesCount64(w.Bits) & 1
	if w.Tag {
		p ^= 1
	}
	return p != 0
}

func (m *Memory) parityAt(i uint64) bool { return m.parity[i/64]>>(i%64)&1 != 0 }

func (m *Memory) setParity(i uint64, p bool) {
	if p {
		m.parity[i/64] |= 1 << (i % 64)
	} else {
		m.parity[i/64] &^= 1 << (i % 64)
	}
}

// EnableParity turns on the per-word parity plane: every stored word
// gains an even-parity bit covering data and tag, writes keep it
// coherent, and reads verify it. A word altered by any route other than
// a write — FlipBit's soft-error model — is detected at its next read.
// The plane is computed from the current contents, so enabling parity on
// a live memory is always consistent. Supersedes an active ECC plane
// (at most one check discipline runs at a time).
func (m *Memory) EnableParity() {
	m.ecc = nil
	m.parity = make([]uint64, (uint64(len(m.data))+63)/64)
	for i := uint64(0); i < uint64(len(m.data)); i++ {
		m.setParity(i, wordParity(word.Word{Bits: m.data[i], Tag: m.tagAt(i)}))
	}
}

// ParityEnabled reports whether the parity plane is active.
func (m *Memory) ParityEnabled() bool { return m.parity != nil }

// FlipBit models a soft error: it inverts one bit of the word at paddr
// — bit 0..63 of the data, or the tag bit for bit 64 — WITHOUT updating
// the parity plane, exactly as a cosmic-ray upset would decay a DRAM
// cell underneath its check bits. With parity enabled the next ReadWord
// of the word reports a *ParityError; a WriteWord first repairs it
// (the fault was masked by overwrite).
func (m *Memory) FlipBit(paddr uint64, bit uint) error {
	i, err := m.index(paddr)
	if err != nil {
		return m.addrErr("flip", paddr, err)
	}
	switch {
	case bit < 64:
		m.data[i] ^= 1 << bit
	case bit == 64:
		m.tags[i/64] ^= 1 << (i % 64)
	case bit <= 72 && m.ecc != nil:
		// Bits 65..72 decay the SECDED check byte itself (seven Hamming
		// bits then the overall parity bit) — check storage is DRAM too.
		m.ecc[i] ^= 1 << (bit - 65)
	default:
		return fmt.Errorf("mem: flip bit %d out of range (0..64)", bit)
	}
	return nil
}

// Scrub sweeps the whole check plane against the stored words — the
// background-scrubber pass that finds latent soft errors before a load
// does — and returns the number of words still bad afterwards.
//
// With the parity plane active the sweep is detect-only: it counts the
// words whose parity disagrees with their contents. With the SECDED
// plane active (EnableECC) the sweep is corrective: every single-bit
// error is repaired in place (counted in ECCStats.Corrected) and only
// uncorrectable double-bit words are returned. Zero when neither plane
// is enabled.
func (m *Memory) Scrub() int {
	if m.ecc != nil {
		bad := 0
		for i := range m.data {
			if !m.verifyECC(uint64(i)) {
				bad++
			}
		}
		return bad
	}
	if m.parity == nil {
		return 0
	}
	bad := 0
	for i := range m.data {
		w := word.Word{Bits: m.data[i], Tag: m.tagAt(uint64(i))}
		if m.parityAt(uint64(i)) != wordParity(w) {
			bad++
		}
	}
	return bad
}

// PeekWord reads the word at paddr bypassing the parity check — the
// auditor's view of the raw (possibly corrupted) array contents.
func (m *Memory) PeekWord(paddr uint64) (word.Word, error) {
	i, err := m.index(paddr)
	if err != nil {
		return word.Word{}, m.addrErr("peek", paddr, err)
	}
	return word.Word{Bits: m.data[i], Tag: m.tagAt(i)}, nil
}
