package mem

import (
	"errors"
	"testing"

	"repro/internal/word"
)

func writeWords(t *testing.T, m *Memory, ws []word.Word) {
	t.Helper()
	for i, w := range ws {
		if err := m.WriteWord(uint64(i)*word.BytesPerWord, w); err != nil {
			t.Fatal(err)
		}
	}
}

func eccMem(t *testing.T) *Memory {
	t.Helper()
	m := New(1024)
	writeWords(t, m, []word.Word{
		{Bits: 0xdeadbeefcafef00d},
		{Bits: 0x0123456789abcdef, Tag: true},
		{Bits: 0},
		{Bits: ^uint64(0), Tag: true},
	})
	m.EnableECC()
	return m
}

// Every single-bit flip — any data bit, the tag bit, any check bit, or
// the overall parity bit — must be corrected transparently by the next
// read, returning the original word.
func TestECCCorrectsEverySingleBitFlip(t *testing.T) {
	for addr := uint64(0); addr < 4*word.BytesPerWord; addr += word.BytesPerWord {
		for bit := uint(0); bit <= 72; bit++ {
			m := eccMem(t)
			want, err := m.ReadWord(addr)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.FlipBit(addr, bit); err != nil {
				t.Fatalf("FlipBit(%#x, %d): %v", addr, bit, err)
			}
			got, err := m.ReadWord(addr)
			if err != nil {
				t.Fatalf("addr %#x bit %d: read after flip: %v", addr, bit, err)
			}
			if got != want {
				t.Fatalf("addr %#x bit %d: corrected word %+v, want %+v", addr, bit, got, want)
			}
			if n := m.ECCStats().Corrected; n != 1 {
				t.Fatalf("addr %#x bit %d: Corrected = %d, want 1", addr, bit, n)
			}
			// The correction is persistent: a second read sees a clean word.
			if _, err := m.ReadWord(addr); err != nil {
				t.Fatalf("addr %#x bit %d: reread: %v", addr, bit, err)
			}
			if n := m.ECCStats().Corrected; n != 1 {
				t.Fatalf("addr %#x bit %d: reread corrected again (%d)", addr, bit, n)
			}
		}
	}
}

// Two flipped bits in one word are uncorrectable: the read must raise a
// typed *ECCError machine check, never return decayed data.
func TestECCDetectsDoubleBitFlips(t *testing.T) {
	cases := [][2]uint{{0, 1}, {3, 64}, {17, 42}, {64, 63}, {5, 68}}
	for _, c := range cases {
		m := eccMem(t)
		const addr = 8
		if err := m.FlipBit(addr, c[0]); err != nil {
			t.Fatal(err)
		}
		if err := m.FlipBit(addr, c[1]); err != nil {
			t.Fatal(err)
		}
		_, err := m.ReadWord(addr)
		var ee *ECCError
		if !errors.As(err, &ee) {
			t.Fatalf("bits %v: read returned %v, want *ECCError", c, err)
		}
		if ee.Addr != addr {
			t.Fatalf("bits %v: ECCError.Addr = %#x, want %#x", c, ee.Addr, uint64(addr))
		}
		if !ee.CorruptionDetected() {
			t.Fatal("ECCError must satisfy the corruption-detection convention")
		}
		if n := m.ECCStats().DoubleBit; n == 0 {
			t.Fatal("DoubleBit counter not incremented")
		}
	}
}

// An overwrite recomputes the check byte, masking any latent fault.
func TestECCWriteRepairs(t *testing.T) {
	m := eccMem(t)
	if err := m.FlipBit(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := m.FlipBit(0, 9); err != nil { // double: unreadable
		t.Fatal(err)
	}
	w := word.Word{Bits: 42}
	if err := m.WriteWord(0, w); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadWord(0)
	if err != nil {
		t.Fatalf("read after overwrite: %v", err)
	}
	if got != w {
		t.Fatalf("got %+v, want %+v", got, w)
	}
}

// Scrub in ECC mode corrects singles and returns only the words left
// uncorrectable.
func TestECCScrubCorrects(t *testing.T) {
	m := eccMem(t)
	if err := m.FlipBit(0, 3); err != nil { // single: repairable
		t.Fatal(err)
	}
	if err := m.FlipBit(16, 64); err != nil { // single tag flip: repairable
		t.Fatal(err)
	}
	if err := m.FlipBit(24, 1); err != nil { // double: uncorrectable
		t.Fatal(err)
	}
	if err := m.FlipBit(24, 2); err != nil {
		t.Fatal(err)
	}
	if bad := m.Scrub(); bad != 1 {
		t.Fatalf("Scrub = %d uncorrectable, want 1", bad)
	}
	if n := m.ECCStats().Corrected; n != 2 {
		t.Fatalf("Corrected = %d, want 2", n)
	}
	// The two repaired words read back clean.
	for _, addr := range []uint64{0, 16} {
		if _, err := m.ReadWord(addr); err != nil {
			t.Fatalf("read %#x after scrub: %v", addr, err)
		}
	}
}

// ScrubStep sweeps incrementally with a rotating cursor: enough steps
// cover the whole memory and repair a fault wherever it lies.
func TestECCScrubStepRotates(t *testing.T) {
	m := eccMem(t)
	const addr = 3 * word.BytesPerWord
	if err := m.FlipBit(addr, 11); err != nil {
		t.Fatal(err)
	}
	fixed := 0
	steps := 0
	for fixed == 0 && steps < 1000 {
		fixed += m.ScrubStep(16)
		steps++
	}
	if fixed != 1 {
		t.Fatalf("ScrubStep never repaired the flip (steps=%d)", steps)
	}
	if _, err := m.ReadWord(addr); err != nil {
		t.Fatalf("read after scrub step: %v", err)
	}
	if m.ECCStats().ScrubWords == 0 {
		t.Fatal("ScrubWords not counted")
	}
}

// ECC and parity are mutually exclusive; enabling one retires the other.
func TestECCParityExclusive(t *testing.T) {
	m := New(256)
	m.EnableParity()
	m.EnableECC()
	if m.ParityEnabled() {
		t.Fatal("parity still enabled after EnableECC")
	}
	if !m.ECCEnabled() {
		t.Fatal("ECC not enabled")
	}
	m.EnableParity()
	if m.ECCEnabled() {
		t.Fatal("ECC still enabled after EnableParity")
	}
	// Check-plane flips are rejected without ECC.
	if err := m.FlipBit(0, 65); err == nil {
		t.Fatal("FlipBit(65) accepted without ECC plane")
	}
}

// Byte stores run through the word write path and keep the check plane
// coherent.
func TestECCByteStoreCoherent(t *testing.T) {
	m := eccMem(t)
	if err := m.SetByteAt(9, 0x5a); err != nil {
		t.Fatal(err)
	}
	w, err := m.ReadWord(8)
	if err != nil {
		t.Fatal(err)
	}
	if byte(w.Bits>>8) != 0x5a || w.Tag {
		t.Fatalf("byte store result %+v", w)
	}
	if bad := m.Scrub(); bad != 0 {
		t.Fatalf("check plane incoherent after byte store: %d bad", bad)
	}
}
