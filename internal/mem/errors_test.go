package mem

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/word"
)

// The fast-path accessors return the bare sentinels internally and only
// wrap them in *AddrError once an error escapes; callers match with
// errors.Is / errors.As, never by string.

func TestErrUnalignedSentinel(t *testing.T) {
	m := New(1 << 12)
	if _, err := m.ReadWord(3); !errors.Is(err, ErrUnaligned) {
		t.Errorf("ReadWord(3) = %v, want errors.Is ErrUnaligned", err)
	}
	if err := m.WriteWord(9, word.FromInt(1)); !errors.Is(err, ErrUnaligned) {
		t.Errorf("WriteWord(9) = %v, want errors.Is ErrUnaligned", err)
	}
}

func TestErrOutOfRangeSentinel(t *testing.T) {
	m := New(1 << 12)
	if _, err := m.ReadWord(1 << 12); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("ReadWord(end) = %v, want errors.Is ErrOutOfRange", err)
	}
	if err := m.WriteWord(1<<20, word.FromInt(1)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("WriteWord(beyond) = %v, want errors.Is ErrOutOfRange", err)
	}
}

func TestAddrErrorDetail(t *testing.T) {
	m := New(1 << 12)
	_, err := m.ReadWord(3)
	var ae *AddrError
	if !errors.As(err, &ae) {
		t.Fatalf("ReadWord(3) = %T, want *AddrError", err)
	}
	if ae.Op != "read" || ae.Addr != 3 {
		t.Errorf("AddrError = %+v, want Op=read Addr=3", ae)
	}
	if msg := err.Error(); !strings.Contains(msg, "mem: read at 0x3") {
		t.Errorf("message %q lacks operation/address detail", msg)
	}

	err = m.WriteWord(1<<13, word.FromInt(1))
	if !errors.As(err, &ae) {
		t.Fatalf("WriteWord(beyond) = %T, want *AddrError", err)
	}
	if ae.Op != "write" || ae.Addr != 1<<13 || ae.Mem != 1<<12 {
		t.Errorf("AddrError = %+v, want Op=write Addr=%#x Mem=%#x", ae, 1<<13, 1<<12)
	}
	if !errors.Is(err, ErrOutOfRange) {
		t.Errorf("wrapped error %v does not unwrap to ErrOutOfRange", err)
	}
}
