package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/word"
)

func TestNewRoundsUpToWords(t *testing.T) {
	m := New(13)
	if m.Size() != 16 {
		t.Errorf("Size = %d, want 16", m.Size())
	}
	if m.Words() != 2 {
		t.Errorf("Words = %d, want 2", m.Words())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(1 << 16)
	f := func(slot uint16, bits uint64, tag bool) bool {
		addr := uint64(slot) % (1 << 13) * word.BytesPerWord
		w := word.Word{Bits: bits, Tag: tag}
		if err := m.WriteWord(addr, w); err != nil {
			return false
		}
		got, err := m.ReadWord(addr)
		return err == nil && got == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagPreservedAcrossNeighbors(t *testing.T) {
	m := New(1 << 12)
	// Write alternating tagged/untagged words and verify no bleed.
	for i := uint64(0); i < 64; i++ {
		w := word.Word{Bits: i, Tag: i%2 == 0}
		if err := m.WriteWord(i*8, w); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 64; i++ {
		got, err := m.ReadWord(i * 8)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag != (i%2 == 0) || got.Bits != i {
			t.Errorf("word %d = %v", i, got)
		}
	}
}

func TestUnalignedAccessRejected(t *testing.T) {
	m := New(64)
	if _, err := m.ReadWord(3); err == nil {
		t.Error("unaligned read accepted")
	}
	if err := m.WriteWord(5, word.Word{}); err == nil {
		t.Error("unaligned write accepted")
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	m := New(64)
	if _, err := m.ReadWord(64); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := m.WriteWord(1<<40, word.Word{}); err == nil {
		t.Error("out-of-range write accepted")
	}
}

func TestZeroRangeClearsDataAndTags(t *testing.T) {
	m := New(256)
	for i := uint64(0); i < 8; i++ {
		if err := m.WriteWord(i*8, word.Tagged(^uint64(0))); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ZeroRange(0, 64); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		w, _ := m.ReadWord(i * 8)
		if !w.IsZero() {
			t.Errorf("word %d = %v after ZeroRange", i, w)
		}
	}
	if err := m.ZeroRange(0, 7); err == nil {
		t.Error("unaligned zero size accepted")
	}
}

func TestTaggedWordsIn(t *testing.T) {
	m := New(256)
	m.WriteWord(8, word.Tagged(1))
	m.WriteWord(24, word.Tagged(2))
	m.WriteWord(32, word.FromInt(3))
	n, err := m.TaggedWordsIn(0, 64)
	if err != nil || n != 2 {
		t.Errorf("TaggedWordsIn = %d, %v; want 2", n, err)
	}
}

func TestOverheadBytesMatchesPaperRatio(t *testing.T) {
	m := New(8 << 20) // the M-Machine's 8MB off-chip memory
	ratio := float64(m.OverheadBytes()) / float64(m.Size())
	if ratio < 0.014 || ratio > 0.017 {
		t.Errorf("tag overhead ratio = %v, want ≈1/64", ratio)
	}
}

func TestFrameAllocator(t *testing.T) {
	m := New(16 * 4096)
	fa, err := NewFrameAllocator(m, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Total() != 16 || fa.Free() != 16 || fa.FrameSize() != 4096 {
		t.Fatalf("geometry: total=%d free=%d size=%d", fa.Total(), fa.Free(), fa.FrameSize())
	}
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		f, err := fa.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if f%4096 != 0 || f >= m.Size() {
			t.Errorf("frame %#x invalid", f)
		}
		if seen[f] {
			t.Errorf("frame %#x handed out twice", f)
		}
		seen[f] = true
	}
	if _, err := fa.Alloc(); err == nil {
		t.Error("alloc beyond capacity succeeded")
	}
	if err := fa.Release(4096); err != nil {
		t.Fatal(err)
	}
	if f, err := fa.Alloc(); err != nil || f != 4096 {
		t.Errorf("realloc = %#x, %v; want 0x1000", f, err)
	}
}

func TestFrameAllocatorValidation(t *testing.T) {
	m := New(16 * 4096)
	if _, err := NewFrameAllocator(m, 3000); err == nil {
		t.Error("non-power-of-two frame size accepted")
	}
	if _, err := NewFrameAllocator(New(5000), 4096); err == nil {
		t.Error("non-multiple memory size accepted")
	}
	fa, _ := NewFrameAllocator(m, 4096)
	if err := fa.Release(100); err == nil {
		t.Error("unaligned release accepted")
	}
	if err := fa.Release(0); err == nil {
		t.Error("release of never-allocated frame when full accepted")
	}
}

func TestFrameClaim(t *testing.T) {
	m := New(8 * 4096)
	fa, _ := NewFrameAllocator(m, 4096)
	if err := fa.Claim(3 * 4096); err != nil {
		t.Fatal(err)
	}
	if fa.Free() != 7 {
		t.Errorf("Free = %d", fa.Free())
	}
	for i := 0; i < 7; i++ {
		f, err := fa.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if f == 3*4096 {
			t.Error("claimed frame handed out")
		}
	}
	if err := fa.Claim(3 * 4096); err == nil {
		t.Error("double claim accepted")
	}
	if err := fa.Claim(100); err == nil {
		t.Error("unaligned claim accepted")
	}
}

func TestByteAccess(t *testing.T) {
	m := New(64)
	// Place a word, then read its bytes.
	m.WriteWord(8, word.FromUint(0x1122334455667788))
	for i, want := range []byte{0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11} {
		b, err := m.ByteAt(8 + uint64(i))
		if err != nil || b != want {
			t.Errorf("byte %d = %#x (%v), want %#x", i, b, err, want)
		}
	}
	// Byte writes land in the right lane and preserve neighbours.
	if err := m.SetByteAt(10, 0xaa); err != nil {
		t.Fatal(err)
	}
	// Byte 2 (bits 16..23, originally 0x66) was replaced.
	w, _ := m.ReadWord(8)
	if w.Uint() != 0x1122334455aa7788 {
		t.Errorf("word after byte write = %#x", w.Uint())
	}
	if _, err := m.ByteAt(1 << 20); err == nil {
		t.Error("out-of-range byte read accepted")
	}
	if err := m.SetByteAt(1<<20, 0); err == nil {
		t.Error("out-of-range byte write accepted")
	}
}

func TestByteWriteClearsTag(t *testing.T) {
	m := New(64)
	m.WriteWord(0, word.Tagged(0xdeadbeef))
	if err := m.SetByteAt(5, 0x01); err != nil {
		t.Fatal(err)
	}
	w, _ := m.ReadWord(0)
	if w.Tag {
		t.Error("partial overwrite preserved the tag")
	}
	// Byte reads never clear tags.
	m.WriteWord(8, word.Tagged(42))
	m.ByteAt(8)
	w2, _ := m.ReadWord(8)
	if !w2.Tag {
		t.Error("byte read cleared a tag")
	}
}
