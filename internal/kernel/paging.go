package kernel

import (
	"errors"
	"sort"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vm"
)

// This file implements the kernel's demand pager. The paper's memory
// system assumes conventional paging underneath segments (Sec 5.2);
// in a single-address-space machine the pager is trivially shared by
// every protection domain — there is one page table, one backing
// store, and no per-process pager state.
//
// The pager hooks the machine's precise-fault path: a load, store or
// instruction fetch that touches a non-resident page faults *before
// any state is committed*, the kernel materializes the page (demand-
// zero for fresh pages of a lazy segment, swap-in for evicted pages,
// evicting a victim with a round-robin clock if no frame is free), the
// handler returns true, and the instruction re-executes.

// PagingStats counts pager activity.
type PagingStats struct {
	DemandZero uint64 // fresh pages materialized
	SwapIns    uint64
	SwapOuts   uint64
	Evictions  uint64
	Refused    uint64 // faults the pager declined (not its addresses)
}

// EnableDemandPaging installs the pager as the machine's fault
// handler, chaining to any previously installed handler for faults it
// does not own. reserve is the number of physical frames the pager
// must leave free (headroom for kernel allocations); 0 is fine for
// experiments.
func (k *Kernel) EnableDemandPaging(reserve int) {
	k.pagerReserve = reserve
	prev := k.M.OnFault
	k.M.OnFault = func(m *machine.Machine, t *machine.Thread, err error) bool {
		var pf *vm.PageFaultError
		if errors.As(err, &pf) {
			wasSwapped := k.M.Space.Swapped(pf.VAddr &^ uint64(vm.PageMask))
			if k.handlePageFault(pf.VAddr) {
				// Charge the fault-service time; the instruction
				// retries when the thread unblocks.
				cost := k.zeroCost
				if wasSwapped {
					cost = k.swapCost
				}
				if cost > 0 {
					t.State = machine.Blocked
					t.BlockUntil(m.Cycle() + cost)
				}
				return true
			}
		}
		if prev != nil {
			return prev(m, t, err)
		}
		return false
	}
}

// SetPagingCosts sets the cycles a faulting thread is stalled while
// the pager services a demand-zero fill and a swap-in (the backing
// store is orders of magnitude slower than memory). Defaults are zero
// so functional tests run fast.
func (k *Kernel) SetPagingCosts(zero, swap uint64) {
	k.zeroCost, k.swapCost = zero, swap
}

// PagingStatsSnapshot returns a copy of the pager counters.
func (k *Kernel) PagingStatsSnapshot() PagingStats { return k.pagingStats }

// AllocSegmentLazy reserves and registers a segment like AllocSegment
// but materializes no pages: each page appears, zeroed, on first touch
// (the pager must be enabled). Large or sparsely used segments cost
// only the physical memory they actually touch — the Sec 4.2 argument
// for why power-of-two virtual rounding wastes little physical space.
func (k *Kernel) AllocSegmentLazy(size uint64) (core.Pointer, error) {
	base, logLen, err := k.VAS.AllocBytes(size)
	if err != nil {
		return core.Pointer{}, err
	}
	p, err := core.Make(core.PermReadWrite, logLen, base)
	if err != nil {
		k.VAS.Free(base)
		return core.Pointer{}, err
	}
	k.segments[base] = logLen
	for _, pg := range pagesOf(base, uint64(1)<<logLen) {
		k.pageRefs[pg]++
	}
	k.stats.SegmentsAllocated++
	return p, nil
}

// handlePageFault materializes the page containing vaddr if the pager
// owns it: a swapped page is brought back; an unmapped page inside a
// registered segment is demand-zeroed. Returns false for addresses the
// pager does not manage.
func (k *Kernel) handlePageFault(vaddr uint64) bool {
	page := vaddr &^ uint64(vm.PageMask)
	s := k.M.Space
	switch {
	case s.Swapped(page):
		if !k.ensureFrame(page) {
			k.pagingStats.Refused++
			return false
		}
		if err := s.SwapIn(page); err != nil {
			k.pagingStats.Refused++
			return false
		}
		k.pagingStats.SwapIns++
		return true
	default:
		if _, _, ok := k.findSegment(vaddr); !ok {
			k.pagingStats.Refused++
			return false
		}
		if k.revoked[pageSegBase(k, vaddr)] {
			k.pagingStats.Refused++
			return false // revoked segments stay dead
		}
		if !k.ensureFrame(page) {
			k.pagingStats.Refused++
			return false
		}
		if err := s.EnsureMapped(page, vm.PageSize); err != nil {
			k.pagingStats.Refused++
			return false
		}
		k.pagingStats.DemandZero++
		return true
	}
}

func pageSegBase(k *Kernel, vaddr uint64) uint64 {
	base, _, _ := k.findSegment(vaddr)
	return base
}

// ensureFrame makes sure at least one frame (plus the reserve) is
// free, evicting resident pages with a round-robin clock. protect is
// the page being faulted in — never chosen as victim.
func (k *Kernel) ensureFrame(protect uint64) bool {
	s := k.M.Space
	for s.Frames.Free() <= k.pagerReserve {
		victim, ok := k.pickVictim(protect)
		if !ok {
			return false
		}
		if err := s.SwapOut(victim); err != nil {
			return false
		}
		k.M.Cache.InvalidateRange(victim, vm.PageSize)
		k.pagingStats.SwapOuts++
		k.pagingStats.Evictions++
	}
	return true
}

// pickVictim chooses the next resident page after the clock hand,
// skipping the protected page.
func (k *Kernel) pickVictim(protect uint64) (uint64, bool) {
	resident := k.M.Space.ResidentPages()
	if len(resident) == 0 {
		return 0, false
	}
	sort.Slice(resident, func(i, j int) bool { return resident[i] < resident[j] })
	// Advance the hand past its previous position.
	i := sort.Search(len(resident), func(i int) bool { return resident[i] > k.clockHand })
	for n := 0; n < len(resident); n++ {
		pg := resident[(i+n)%len(resident)]
		if pg == protect {
			continue
		}
		k.clockHand = pg
		return pg, true
	}
	return 0, false
}

// ResidentFrames reports frames in use (total − free).
func (k *Kernel) ResidentFrames() int {
	return k.M.Space.Frames.Total() - k.M.Space.Frames.Free()
}
