package kernel

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/vm"
	"repro/internal/word"
)

// Incremental checkpointing: capture cost proportional to the pages
// actually dirtied since the previous generation, instead of O(memory)
// per capture. A chain is one base image followed by delta images; each
// delta records the pages changed since its parent plus tombstones for
// pages that disappeared. Restoring generation N replays deltas 1..N
// onto the base (Materialize) and hands the merged base image to the
// ordinary Restore.
//
// Completeness does not rest on dirty bits alone. Three mutations leave
// no dirty bit on a resident PTE and are tracked separately by the
// Space (vm/capture.go): a page freshly mapped (re-map after free can
// reuse a frame, contents new, PTE clean), a page whose frame changed
// (swap round trip), and a backing-store buffer mutated in place
// (swap-out, ZeroWords on a swapped page). The capture barrier is
// atomic: dirty bits are observed and cleared in one pass, micro-cache
// dirty hints dropped with them, so a store racing the capture is never
// dropped from the next delta.

// CaptureState is the between-generation bookkeeping of an incremental
// chain: the residency manifest of the previous capture. It is bound to
// the Space it was taken from — restoring a kernel produces a fresh
// Space, so a stale CaptureState is rejected rather than producing a
// delta against a machine that no longer exists.
type CaptureState struct {
	space    *vm.Space
	resident map[uint64]uint64 // page → frame at the previous capture
	swapped  map[uint64]struct{}
}

// Matches reports whether cs is a usable baseline for k — non-nil and
// bound to k's current Space. A false answer means the next incremental
// capture must be a full base image.
func (cs *CaptureState) Matches(k *Kernel) bool {
	return cs != nil && k != nil && cs.space == k.M.Space
}

// readPage captures one resident page through the physical plane (ECC
// heals correctable decay on the way into the image).
func (k *Kernel) readPage(page, frame uint64) (PageImage, error) {
	wordsPerPage := vm.PageSize / word.BytesPerWord
	img := PageImage{VAddr: page, Frame: frame, Words: make([]word.Word, wordsPerPage)}
	for i := 0; i < wordsPerPage; i++ {
		w, err := k.M.Space.Phys.ReadWord(frame + uint64(i)*word.BytesPerWord)
		if err != nil {
			return PageImage{}, err
		}
		img.Words[i] = w
	}
	return img, nil
}

// manifest records the Space's current residency for the next delta.
func manifest(s *vm.Space) *CaptureState {
	st := &CaptureState{
		space:    s,
		resident: make(map[uint64]uint64),
		swapped:  make(map[uint64]struct{}),
	}
	s.PT.Walk(func(page uint64, pte vm.PTE) bool {
		st.resident[page] = pte.Frame
		return true
	})
	for _, p := range s.SwapPageList() {
		st.swapped[p] = struct{}{}
	}
	return st
}

// CheckpointIncremental captures the next generation of an incremental
// chain. A nil (or stale) prev produces a full base image and arms the
// chain; a valid prev produces a delta holding only the pages changed
// since prev was taken. Call with the machine quiescent, like
// Checkpoint. The returned CaptureState feeds the next call.
func (k *Kernel) CheckpointIncremental(prev *CaptureState) (*Checkpoint, *CaptureState, error) {
	s := k.M.Space
	if prev == nil || prev.space != s {
		cp, err := k.Checkpoint()
		if err != nil {
			return nil, nil, err
		}
		// Arm tracking and reset the observation window: everything up
		// to here is in the base by construction.
		s.StartCaptureTracking()
		s.DrainCaptureTouched()
		s.DirtyPages(true)
		return cp, manifest(s), nil
	}

	// One atomic observe-and-clear pass, then the sets dirty bits cannot
	// express.
	dirty := s.DirtyPages(true)
	fresh, swapTouched := s.DrainCaptureTouched()

	current := make(map[uint64]uint64)
	s.PT.Walk(func(page uint64, pte vm.PTE) bool {
		current[page] = pte.Frame
		return true
	})

	changed := make(map[uint64]struct{})
	for _, p := range dirty {
		if _, ok := current[p]; ok {
			changed[p] = struct{}{}
		}
	}
	for _, p := range fresh {
		if _, ok := current[p]; ok {
			changed[p] = struct{}{}
		}
	}
	for p, f := range current {
		if pf, ok := prev.resident[p]; !ok || pf != f {
			changed[p] = struct{}{}
		}
	}

	cp := &Checkpoint{
		Delta:      true,
		RegionBase: k.regionBase,
		RegionLog:  k.regionLog,
		Segments:   make(map[uint64]uint, len(k.segments)),
		Revoked:    make(map[uint64]bool, len(k.revoked)),
		NextDomain: k.nextDomain,
	}
	for b, l := range k.segments {
		cp.Segments[b] = l
	}
	for b := range k.revoked {
		cp.Revoked[b] = true
	}

	pages := make([]uint64, 0, len(changed))
	for p := range changed {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, p := range pages {
		img, err := k.readPage(p, current[p])
		if err != nil {
			return nil, nil, err
		}
		cp.Resident = append(cp.Resident, img)
	}
	for p := range prev.resident {
		if _, ok := current[p]; !ok {
			cp.Dropped = append(cp.Dropped, p)
		}
	}
	sort.Slice(cp.Dropped, func(i, j int) bool { return cp.Dropped[i] < cp.Dropped[j] })

	swapNow := make(map[uint64]struct{})
	swapChanged := make(map[uint64]struct{})
	for _, p := range s.SwapPageList() {
		swapNow[p] = struct{}{}
		if _, ok := prev.swapped[p]; !ok {
			swapChanged[p] = struct{}{}
		}
	}
	for _, p := range swapTouched {
		if _, ok := swapNow[p]; ok {
			swapChanged[p] = struct{}{}
		}
	}
	swapPages := make([]uint64, 0, len(swapChanged))
	for p := range swapChanged {
		swapPages = append(swapPages, p)
	}
	sort.Slice(swapPages, func(i, j int) bool { return swapPages[i] < swapPages[j] })
	for _, p := range swapPages {
		words, ok := s.SwapPage(p)
		if !ok {
			return nil, nil, fmt.Errorf("kernel: swap page %#x vanished during capture", p)
		}
		cp.Swapped = append(cp.Swapped, PageImage{VAddr: p, Words: words})
	}
	for p := range prev.swapped {
		if _, ok := swapNow[p]; !ok {
			cp.SwapDropped = append(cp.SwapDropped, p)
		}
	}
	sort.Slice(cp.SwapDropped, func(i, j int) bool { return cp.SwapDropped[i] < cp.SwapDropped[j] })

	for _, t := range k.M.Threads() {
		cp.Threads = append(cp.Threads, ThreadImage{
			Domain:  t.Domain,
			State:   t.State,
			IPWord:  t.IP.Word(),
			Regs:    t.Regs,
			Instret: t.Instret,
		})
	}

	st := &CaptureState{space: s, resident: current, swapped: swapNow}
	return cp, st, nil
}

// Materialize flattens a delta chain — one base image followed by its
// deltas, oldest first — into a self-contained base image equivalent to
// a full capture at the final generation. Metadata and threads come
// from the newest image; page state is the base overlaid by each delta
// in order, tombstones applied before that delta's pages.
func Materialize(chain []*Checkpoint) (*Checkpoint, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("kernel: materialize of empty chain")
	}
	if chain[0].Delta {
		return nil, fmt.Errorf("kernel: chain does not start with a base image")
	}
	res := make(map[uint64]PageImage)
	swp := make(map[uint64]PageImage)
	var tail *Checkpoint
	for i, cp := range chain {
		if i > 0 && !cp.Delta {
			return nil, fmt.Errorf("kernel: base image at position %d of chain", i)
		}
		for _, p := range cp.Dropped {
			delete(res, p)
		}
		for _, p := range cp.SwapDropped {
			delete(swp, p)
		}
		for _, img := range cp.Resident {
			res[img.VAddr] = img
		}
		for _, img := range cp.Swapped {
			swp[img.VAddr] = img
		}
		tail = cp
	}
	out := &Checkpoint{
		RegionBase: tail.RegionBase,
		RegionLog:  tail.RegionLog,
		Segments:   make(map[uint64]uint, len(tail.Segments)),
		Revoked:    make(map[uint64]bool, len(tail.Revoked)),
		NextDomain: tail.NextDomain,
		Threads:    append([]ThreadImage(nil), tail.Threads...),
	}
	for b, l := range tail.Segments {
		out.Segments[b] = l
	}
	for b := range tail.Revoked {
		out.Revoked[b] = true
	}
	for _, img := range res {
		out.Resident = append(out.Resident, img)
	}
	sort.Slice(out.Resident, func(i, j int) bool { return out.Resident[i].VAddr < out.Resident[j].VAddr })
	for _, img := range swp {
		out.Swapped = append(out.Swapped, img)
	}
	sort.Slice(out.Swapped, func(i, j int) bool { return out.Swapped[i].VAddr < out.Swapped[j].VAddr })
	return out, nil
}

// RestoreChain materializes a delta chain and restores the merged
// image.
func RestoreChain(cfg machine.Config, chain []*Checkpoint) (*Kernel, error) {
	cp, err := Materialize(chain)
	if err != nil {
		return nil, err
	}
	return Restore(cfg, cp)
}
