package kernel

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/machine"
)

// This file implements protected-subsystem linkage, Figs. 3 and 4 of
// the paper, plus the kernel-mediated call gate that experiment E3 uses
// as the conventional baseline.

// InstallSubsystem loads prog into a fresh code segment, patches the
// program's labeled pointer slots with the given capabilities (the GP1,
// GP2 data-structure pointers of Fig. 3 live *inside* the code segment,
// reachable only through the execute pointer the entry conversion
// yields), and returns an enter-user pointer to the entry label.
//
// The caller receiving the returned pointer can transfer control to the
// subsystem but can never read its embedded capabilities or jump
// anywhere but the entry point — that is the whole protection argument
// of Sec 2.3.
func (k *Kernel) InstallSubsystem(prog *asm.Program, entry string, slots map[string]core.Pointer) (core.Pointer, error) {
	seg, err := k.AllocSegment(prog.ByteSize())
	if err != nil {
		return core.Pointer{}, err
	}
	if err := k.WriteWords(seg, prog.Words); err != nil {
		return core.Pointer{}, err
	}
	for label, ptr := range slots {
		off, err := prog.LabelByte(label)
		if err != nil {
			return core.Pointer{}, err
		}
		slot, err := core.LEAB(seg, int64(off))
		if err != nil {
			return core.Pointer{}, err
		}
		if err := k.M.Space.WriteWord(slot.Addr(), ptr.Word()); err != nil {
			return core.Pointer{}, err
		}
	}
	entryOff, err := prog.LabelByte(entry)
	if err != nil {
		return core.Pointer{}, err
	}
	return core.Make(core.PermEnterUser, seg.LogLen(), seg.Base()+entryOff)
}

// gate bookkeeping for the trap-mediated baseline.
type gate struct {
	target core.Pointer
}

// RegisterGate registers target (an execute pointer) as a kernel call
// gate and returns its id. This models the conventional design the
// paper contrasts with enter pointers: entering a protected subsystem
// requires trapping to the kernel, which validates the gate id in a
// table and performs the transfer.
func (k *Kernel) RegisterGate(target core.Pointer) (int64, error) {
	if !target.Perm().CanExecute() {
		return 0, fmt.Errorf("kernel: gate target %v is not executable", target)
	}
	if k.gates == nil {
		k.gates = make(map[int64]gate)
	}
	id := int64(len(k.gates) + 1)
	k.gates[id] = gate{target: target}
	return id, nil
}

// callGate implements TrapCallGate: r2 holds the gate id; the kernel
// looks it up, places the return execute pointer in r14 (the thread's
// IP is already past the trap), and transfers control. The machine has
// already charged TrapCost — the fixed pipeline-drain price an enter
// pointer avoids entirely.
func (k *Kernel) callGate(t *machine.Thread) error {
	id := t.Reg(2).Int()
	g, ok := k.gates[id]
	if !ok {
		return fmt.Errorf("kernel: invalid gate id %d", id)
	}
	t.SetReg(14, t.IP.Word())
	return t.SetIP(g.target)
}
