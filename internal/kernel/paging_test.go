package kernel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vm"
	"repro/internal/word"
)

// pagingKernel boots a kernel with very little physical memory so the
// pager has to work: frames beyond the reserve get evicted.
func pagingKernel(t *testing.T, physPages int) *Kernel {
	t.Helper()
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	cfg.PhysBytes = uint64(physPages) * vm.PageSize
	cfg.TrapCost = 10
	k, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.EnableDemandPaging(0)
	return k
}

func TestLazySegmentDemandZero(t *testing.T) {
	k := pagingKernel(t, 64)
	seg, err := k.AllocSegmentLazy(8 * vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if k.PagingStatsSnapshot().DemandZero != 0 {
		t.Fatal("pages materialized before any touch")
	}
	// Touch two pages via a program; only those two materialize.
	prog := mustAssemble(`
		ldi r2, 77
		st  r1, 0, r2
		ld  r3, r1, 0
		st  r1, 8192, r2
		halt
	`)
	ip, _ := k.LoadProgram(prog, false)
	th, _ := k.Spawn(1, ip, map[int]word.Word{1: seg.Word()})
	k.Run(100000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if th.Reg(3).Int() != 77 {
		t.Errorf("r3 = %d", th.Reg(3).Int())
	}
	if got := k.PagingStatsSnapshot().DemandZero; got != 2 {
		t.Errorf("DemandZero = %d, want 2 (touched pages only)", got)
	}
}

func TestPagerRefusesForeignAddresses(t *testing.T) {
	k := pagingKernel(t, 64)
	// A forged-by-kernel pointer outside any registered segment: the
	// pager must not materialize it.
	prog := mustAssemble("ld r2, r1, 0\nhalt")
	ip, _ := k.LoadProgram(prog, false)
	wild := mustPtr(t, k, 0x3000000) // outside the kernel region
	th, _ := k.Spawn(1, ip, map[int]word.Word{1: wild})
	k.Run(100000)
	if th.State != machine.Faulted {
		t.Error("access outside any segment did not fault")
	}
	if k.PagingStatsSnapshot().Refused == 0 {
		t.Error("pager did not record the refusal")
	}
}

func mustPtr(t *testing.T, k *Kernel, addr uint64) word.Word {
	t.Helper()
	p, err := core.Make(core.PermReadWrite, 12, addr)
	if err != nil {
		t.Fatal(err)
	}
	return p.Word()
}

func TestWorkingSetLargerThanMemory(t *testing.T) {
	// 16 physical pages; the program sweeps a 32-page lazy segment
	// twice and verifies its data — forcing eviction and swap-in, with
	// capabilities surviving the swap.
	k := pagingKernel(t, 16)
	seg, err := k.AllocSegmentLazy(32 * vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	prog := mustAssemble(`
		; pass 1: write page i's first word = i
		ldi r2, 32
		mov r3, r1
		ldi r4, 0
	wr:
		st   r3, 0, r4
		addi r4, r4, 1
		subi r2, r2, 1
		beqz r2, rd_init
		leai r3, r3, 4096
		br   wr
	rd_init:
		; pass 2: read back and sum
		ldi r2, 32
		mov r3, r1
		ldi r5, 0
	rd:
		ld   r6, r3, 0
		add  r5, r5, r6
		subi r2, r2, 1
		beqz r2, done
		leai r3, r3, 4096
		br   rd
	done:
		halt
	`)
	ip, _ := k.LoadProgram(prog, false)
	th, _ := k.Spawn(1, ip, map[int]word.Word{1: seg.Word()})
	k.Run(10_000_000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if th.Reg(5).Int() != 31*32/2 {
		t.Errorf("sum = %d, want %d", th.Reg(5).Int(), 31*32/2)
	}
	st := k.PagingStatsSnapshot()
	if st.Evictions == 0 || st.SwapIns == 0 {
		t.Errorf("no paging happened: %+v", st)
	}
	if k.ResidentFrames() > 16 {
		t.Errorf("resident frames %d exceed physical memory", k.ResidentFrames())
	}
}

func TestCapabilitiesSurviveSwap(t *testing.T) {
	k := pagingKernel(t, 16)
	// Segment A holds a capability to segment B; A gets swapped out
	// and back; the capability must still work.
	a, err := k.AllocSegment(vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.AllocSegment(vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	k.WriteWords(b, []word.Word{word.FromInt(616)})
	k.WriteWords(a, []word.Word{b.Word()})

	if err := k.M.Space.SwapOut(a.Base()); err != nil {
		t.Fatal(err)
	}
	k.M.Cache.InvalidateRange(a.Base(), vm.PageSize)

	prog := mustAssemble(`
		ld r2, r1, 0   ; faults; pager swaps the page back in
		ld r3, r2, 0   ; dereference the recovered capability
		halt
	`)
	ip, _ := k.LoadProgram(prog, false)
	th, _ := k.Spawn(1, ip, map[int]word.Word{1: a.Word()})
	k.Run(100000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if th.Reg(3).Int() != 616 {
		t.Errorf("r3 = %d, want 616", th.Reg(3).Int())
	}
	if k.PagingStatsSnapshot().SwapIns != 1 {
		t.Errorf("SwapIns = %d", k.PagingStatsSnapshot().SwapIns)
	}
}

func TestFreeLazySegmentNeverTouched(t *testing.T) {
	k := pagingKernel(t, 16)
	seg, err := k.AllocSegmentLazy(4 * vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.FreeSegment(seg); err != nil {
		t.Fatalf("freeing untouched lazy segment: %v", err)
	}
	if k.Segments() != 0 {
		t.Error("segment still registered")
	}
}

func TestFreeSegmentPurgesSwap(t *testing.T) {
	k := pagingKernel(t, 16)
	seg, _ := k.AllocSegment(vm.PageSize)
	k.WriteWords(seg, []word.Word{word.FromInt(5)})
	k.M.Space.SwapOut(seg.Base())
	if err := k.FreeSegment(seg); err != nil {
		t.Fatal(err)
	}
	if k.M.Space.SwappedPages() != 0 {
		t.Error("backing store entry leaked after free")
	}
}

func TestCodePagesSwapToo(t *testing.T) {
	// Evicting the running thread's code page must be recoverable:
	// the fetch faults and the pager brings it back.
	k := pagingKernel(t, 16)
	prog := mustAssemble(`
		ldi r3, 5
	loop:
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	ip, _ := k.LoadProgram(prog, false)
	th, _ := k.Spawn(1, ip, nil)
	// Let it start, then yank its code page mid-run.
	for i := 0; i < 3; i++ {
		k.M.Step()
	}
	if err := k.M.Space.SwapOut(ip.Base()); err != nil {
		t.Fatal(err)
	}
	k.Run(100000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if k.PagingStatsSnapshot().SwapIns == 0 {
		t.Error("code page not recovered via pager")
	}
}

func TestPagingCostsCharged(t *testing.T) {
	// With costs set, a swap-in stalls the faulting thread for the
	// configured service time; the same workload without costs is
	// much faster.
	run := func(zero, swap uint64) uint64 {
		k := pagingKernel(t, 16)
		k.SetPagingCosts(zero, swap)
		seg, err := k.AllocSegment(vm.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.M.Space.SwapOut(seg.Base()); err != nil {
			t.Fatal(err)
		}
		ip, _ := k.LoadProgram(mustAssemble("ld r2, r1, 0\nhalt"), false)
		th, _ := k.Spawn(1, ip, map[int]word.Word{1: seg.Word()})
		k.Run(1_000_000)
		if th.State != machine.Halted {
			t.Fatalf("%v %v", th.State, th.Fault)
		}
		return k.M.Stats().Cycles
	}
	free := run(0, 0)
	paid := run(0, 5000)
	if paid < free+4500 {
		t.Errorf("swap cost not charged: %d vs %d cycles", paid, free)
	}
}
