package kernel

import (
	"os"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/word"
)

var osReadFile = os.ReadFile

func testKernel(t *testing.T) *Kernel {
	t.Helper()
	cfg := machine.MMachine()
	cfg.Clusters = 2
	cfg.SlotsPerCluster = 2
	cfg.PhysBytes = 4 << 20
	cfg.TrapCost = 10
	k, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestAllocSegmentBasics(t *testing.T) {
	k := testKernel(t)
	p, err := k.AllocSegment(100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Perm() != core.PermReadWrite {
		t.Errorf("perm = %v", p.Perm())
	}
	if p.SegSize() != 128 {
		t.Errorf("size = %d, want 128 (rounded)", p.SegSize())
	}
	if p.Offset() != 0 {
		t.Errorf("offset = %d", p.Offset())
	}
	// The segment is mapped and zeroed.
	w, err := k.ReadWord(p)
	if err != nil || !w.IsZero() {
		t.Errorf("fresh segment word = %v, %v", w, err)
	}
	if k.Segments() != 1 {
		t.Errorf("Segments = %d", k.Segments())
	}
}

func TestSegmentsDoNotOverlap(t *testing.T) {
	k := testKernel(t)
	var ptrs []core.Pointer
	for i := 0; i < 50; i++ {
		p, err := k.AllocSegment(uint64(8 << (i % 8)))
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range ptrs {
			if p.Overlaps(q) {
				t.Fatalf("segment %v overlaps %v", p, q)
			}
		}
		ptrs = append(ptrs, p)
	}
}

func TestFreeSegmentRevokesAccess(t *testing.T) {
	k := testKernel(t)
	p, _ := k.AllocSegment(4096)
	if err := k.WriteWords(p, []word.Word{word.FromInt(7)}); err != nil {
		t.Fatal(err)
	}
	if err := k.FreeSegment(p); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ReadWord(p); err == nil {
		t.Error("read after free succeeded")
	}
	if err := k.FreeSegment(p); err == nil {
		t.Error("double free accepted")
	}
}

func TestFreeSegmentViaDerivedPointer(t *testing.T) {
	k := testKernel(t)
	p, _ := k.AllocSegment(4096)
	inner, err := core.LEA(p, 128)
	if err != nil {
		t.Fatal(err)
	}
	narrowed, err := core.SubSeg(inner, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.FreeSegment(narrowed); err != nil {
		t.Fatalf("free via derived pointer: %v", err)
	}
	if k.Segments() != 0 {
		t.Error("segment still registered")
	}
}

func TestWriteWordsBounds(t *testing.T) {
	k := testKernel(t)
	p, _ := k.AllocSegment(16) // 2 words
	if err := k.WriteWords(p, make([]word.Word, 3)); err == nil {
		t.Error("overlong write accepted")
	}
}

func TestLoadProgramAndRun(t *testing.T) {
	k := testKernel(t)
	prog := mustAssemble(`
		ldi r1, 11
		ldi r2, 31
		mul r3, r1, r2
		halt
	`)
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Perm() != core.PermExecuteUser {
		t.Errorf("perm = %v", ip.Perm())
	}
	th, err := k.Spawn(k.NewDomain(), ip, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(10000)
	if th.State != machine.Halted {
		t.Fatalf("thread: %v %v", th.State, th.Fault)
	}
	if th.Reg(3).Int() != 341 {
		t.Errorf("r3 = %d", th.Reg(3).Int())
	}
}

func TestSpawnWithArgsAndPrivProgram(t *testing.T) {
	k := testKernel(t)
	prog := mustAssemble(`
		setptr r2, r1
		halt
	`)
	ip, err := k.LoadProgram(prog, true)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Perm() != core.PermExecutePriv {
		t.Fatalf("perm = %v", ip.Perm())
	}
	raw := mustMake(core.PermReadOnly, 3, 0x100).Word().Untag()
	th, err := k.Spawn(0, ip, map[int]word.Word{1: raw})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(1000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if !th.Reg(2).Tag {
		t.Error("privileged SETPTR failed")
	}
}

func TestTrapAllocAndFree(t *testing.T) {
	k := testKernel(t)
	prog := mustAssemble(`
		ldi r1, 256
		trap 1          ; alloc → r1 = pointer
		isptr r2, r1
		mov r3, r1
		ldi r4, 42
		st  r1, 0, r4
		ld  r5, r1, 0
		trap 2          ; free r1
		halt
	`)
	ip, _ := k.LoadProgram(prog, false)
	th, _ := k.Spawn(1, ip, nil)
	k.Run(10000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if th.Reg(2).Int() != 1 {
		t.Error("trap alloc did not return a pointer")
	}
	if th.Reg(5).Int() != 42 {
		t.Errorf("r5 = %d", th.Reg(5).Int())
	}
	// One code segment remains; the data segment was freed.
	if k.Segments() != 1 {
		t.Errorf("Segments = %d, want 1", k.Segments())
	}
}

func TestUnknownTrapFaults(t *testing.T) {
	k := testKernel(t)
	ip, _ := k.LoadProgram(mustAssemble("trap 99\nhalt"), false)
	th, _ := k.Spawn(0, ip, nil)
	k.Run(1000)
	if th.State != machine.Faulted {
		t.Error("unknown trap did not fault")
	}
}

func TestRegisterService(t *testing.T) {
	k := testKernel(t)
	called := false
	code := k.RegisterService(func(k *Kernel, t *machine.Thread) error {
		called = true
		t.SetReg(1, word.FromInt(123))
		return nil
	})
	src := "trap " + itoa(code) + "\nhalt"
	ip, _ := k.LoadProgram(mustAssemble(src), false)
	th, _ := k.Spawn(0, ip, nil)
	k.Run(1000)
	if !called || th.Reg(1).Int() != 123 {
		t.Errorf("service: called=%v r1=%d", called, th.Reg(1).Int())
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestInstallSubsystemFig3(t *testing.T) {
	// Fig. 3 end-to-end: subsystem's data pointer lives in its code
	// segment; the caller holds only an enter pointer, calls through
	// it, and the subsystem touches its private data.
	k := testKernel(t)
	private, _ := k.AllocSegment(64)
	k.WriteWords(private, []word.Word{word.FromInt(777)})

	sub := mustAssemble(`
	entry:
		movip r2
		leab  r3, r2, r0     ; code segment base
		ld    r4, r3, =gp1   ; load private data pointer (Fig. 3C)
		ld    r5, r4, 0      ; use it
		jmp   r14            ; return (Fig. 3D)
	gp1:
		.word 0              ; patched with the private pointer
	`)
	enter, err := k.InstallSubsystem(sub, "entry", map[string]core.Pointer{"gp1": private})
	if err != nil {
		t.Fatal(err)
	}
	if enter.Perm() != core.PermEnterUser {
		t.Fatalf("perm = %v", enter.Perm())
	}

	caller := mustAssemble(`
		jmpl r14, r1
		mov  r6, r5
		halt
	`)
	ip, _ := k.LoadProgram(caller, false)
	th, _ := k.Spawn(k.NewDomain(), ip, map[int]word.Word{1: enter.Word()})
	k.Run(10000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if th.Reg(6).Int() != 777 {
		t.Errorf("r6 = %d, want 777 (subsystem read private data)", th.Reg(6).Int())
	}

	// The caller cannot read the subsystem's code segment (and hence
	// its embedded capability) through the enter pointer.
	spy := mustAssemble(`
		ld r2, r1, 0
		halt
	`)
	ip2, _ := k.LoadProgram(spy, false)
	th2, _ := k.Spawn(k.NewDomain(), ip2, map[int]word.Word{1: enter.Word()})
	k.Run(10000)
	if th2.State != machine.Faulted || core.CodeOf(th2.Fault) != core.FaultPerm {
		t.Errorf("spy fault = %v, want perm fault", th2.Fault)
	}
}

func TestInstallSubsystemBadLabels(t *testing.T) {
	k := testKernel(t)
	prog := mustAssemble("entry: halt")
	if _, err := k.InstallSubsystem(prog, "missing", nil); err == nil {
		t.Error("missing entry label accepted")
	}
	if _, err := k.InstallSubsystem(prog, "entry", map[string]core.Pointer{"nope": {}}); err == nil {
		t.Error("missing slot label accepted")
	}
}

func TestCallGateBaseline(t *testing.T) {
	k := testKernel(t)
	service := mustAssemble(`
		ldi r5, 555
		jmp r14
	`)
	target, _ := k.LoadProgram(service, false)
	id, err := k.RegisterGate(target)
	if err != nil {
		t.Fatal(err)
	}
	caller := mustAssemble(`
		ldi r2, ` + itoa(id) + `
		trap 3
		halt
	`)
	ip, _ := k.LoadProgram(caller, false)
	th, _ := k.Spawn(0, ip, nil)
	k.Run(10000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if th.Reg(5).Int() != 555 {
		t.Errorf("r5 = %d", th.Reg(5).Int())
	}
}

func TestCallGateValidation(t *testing.T) {
	k := testKernel(t)
	data, _ := k.AllocSegment(64)
	if _, err := k.RegisterGate(data); err == nil {
		t.Error("data pointer accepted as gate")
	}
	// Invalid gate id faults the caller.
	ip, _ := k.LoadProgram(mustAssemble("ldi r2, 77\ntrap 3\nhalt"), false)
	th, _ := k.Spawn(0, ip, nil)
	k.Run(1000)
	if th.State != machine.Faulted {
		t.Error("bad gate id did not fault")
	}
}

func TestRevokeInvalidatesAllCopies(t *testing.T) {
	k := testKernel(t)
	seg, _ := k.AllocSegment(4096)
	holder, _ := k.AllocSegment(64)
	// A copy of the capability sits in memory.
	if err := k.WriteWords(holder, []word.Word{seg.Word()}); err != nil {
		t.Fatal(err)
	}
	if err := k.Revoke(seg); err != nil {
		t.Fatal(err)
	}
	// The stored copy is still a pointer but every use faults.
	w, err := k.ReadWord(holder)
	if err != nil || !w.Tag {
		t.Fatalf("stored capability: %v %v", w, err)
	}
	if _, err := k.ReadWord(seg); err == nil {
		t.Error("access through revoked segment succeeded")
	}
	if err := k.Revoke(mustMake(core.PermReadOnly, 3, 0x100)); err == nil {
		t.Error("revoking unknown segment succeeded")
	}
	// FreeSegment releases the reservation afterwards.
	if err := k.FreeSegment(seg); err != nil {
		t.Fatal(err)
	}
}

func TestSweepRevoke(t *testing.T) {
	k := testKernel(t)
	target, _ := k.AllocSegment(256)
	a, _ := k.AllocSegment(64)
	b, _ := k.AllocSegment(64)
	inner, _ := core.LEA(target, 8)
	k.WriteWords(a, []word.Word{target.Word(), word.FromInt(5)})
	k.WriteWords(b, []word.Word{inner.Word(), b.Word()})

	st, err := k.SweepRevoke(target)
	if err != nil {
		t.Fatal(err)
	}
	if st.PointersRewritten != 2 {
		t.Errorf("rewritten = %d, want 2", st.PointersRewritten)
	}
	if st.WordsScanned == 0 || st.SegmentsScanned != 3 {
		t.Errorf("stats = %+v", st)
	}
	// Copies are destroyed...
	wa, _ := k.ReadWord(a)
	if wa.Tag {
		t.Error("pointer in segment a survived sweep")
	}
	// ...unrelated pointers survive.
	wb, _ := k.M.Space.ReadWord(b.Addr() + 8)
	if !wb.Tag {
		t.Error("unrelated pointer was destroyed")
	}
}

func TestSweepRevokeScrubsRegisters(t *testing.T) {
	k := testKernel(t)
	target, _ := k.AllocSegment(64)
	ip, _ := k.LoadProgram(mustAssemble("halt"), false)
	th, _ := k.Spawn(0, ip, map[int]word.Word{7: target.Word()})
	st, err := k.SweepRevoke(target)
	if err != nil {
		t.Fatal(err)
	}
	if st.PointersRewritten != 1 {
		t.Errorf("rewritten = %d", st.PointersRewritten)
	}
	if th.Reg(7).Tag {
		t.Error("register capability survived sweep")
	}
}

func TestCollectAddressSpace(t *testing.T) {
	k := testKernel(t)
	// live chain: root → a → b; garbage: c, d (d points to c, both
	// unreachable).
	a, _ := k.AllocSegment(64)
	b, _ := k.AllocSegment(64)
	c, _ := k.AllocSegment(64)
	d, _ := k.AllocSegment(64)
	k.WriteWords(a, []word.Word{b.Word()})
	k.WriteWords(c, []word.Word{word.FromInt(31337)})
	k.WriteWords(d, []word.Word{c.Word()})

	st, err := k.CollectAddressSpace([]word.Word{a.Word()})
	if err != nil {
		t.Fatal(err)
	}
	if st.LiveSegments != 2 || st.FreedSegments != 2 {
		t.Errorf("stats = %+v", st)
	}
	if _, err := k.ReadWord(b); err != nil {
		t.Error("live segment b was collected")
	}
	// c and d were freed and unregistered. They share a page with the
	// live segments, so their addresses still read — but as zeroes (the
	// kernel scrubs freed segments), and their space is reusable.
	if w, err := k.ReadWord(c); err == nil && !w.IsZero() {
		t.Errorf("garbage segment c not scrubbed: %v", w)
	}
	if k.Segments() != 2 {
		t.Errorf("Segments = %d", k.Segments())
	}
	if e, err := k.AllocSegment(64); err != nil {
		t.Errorf("freed space not reusable: %v", err)
	} else if e.Base() != c.Base() && e.Base() != d.Base() {
		t.Errorf("new segment at %#x, expected recycled c/d space", e.Base())
	}
}

func TestCollectKeepsThreadReachable(t *testing.T) {
	k := testKernel(t)
	seg, _ := k.AllocSegment(64)
	ip, _ := k.LoadProgram(mustAssemble("halt"), false)
	th, _ := k.Spawn(0, ip, map[int]word.Word{3: seg.Word()})
	_ = th
	st, err := k.CollectAddressSpace(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both the code segment (via IP) and the data segment (via r3)
	// survive with no explicit roots.
	if st.FreedSegments != 0 || k.Segments() != 2 {
		t.Errorf("GC freed reachable segments: %+v", st)
	}
}

func TestCollectSkipsRevokedSegments(t *testing.T) {
	k := testKernel(t)
	seg, _ := k.AllocSegment(64)
	holder, _ := k.AllocSegment(64)
	k.WriteWords(holder, []word.Word{seg.Word()})
	if err := k.Revoke(seg); err != nil {
		t.Fatal(err)
	}
	// GC with the holder as root must not crash on the unmapped
	// segment; the revoked segment is marked (a pointer names it) but
	// not scanned.
	if _, err := k.CollectAddressSpace([]word.Word{holder.Word()}); err != nil {
		t.Fatalf("GC over revoked segment: %v", err)
	}
}

func TestTrapAllocFailurePropagates(t *testing.T) {
	k := testKernel(t)
	ip, _ := k.LoadProgram(mustAssemble(`
		ldi r1, 1
		shli r1, r1, 40   ; 2^40 bytes: exceeds the kernel region
		trap 1
		halt
	`), false)
	th, _ := k.Spawn(0, ip, nil)
	k.Run(10000)
	if th.State != machine.Faulted {
		t.Error("impossible allocation did not fault the thread")
	}
	if !strings.Contains(th.Fault.Error(), "buddy") {
		t.Errorf("fault = %v", th.Fault)
	}
}

func TestStatsCounters(t *testing.T) {
	k := testKernel(t)
	p, _ := k.AllocSegment(64)
	k.FreeSegment(p)
	q, _ := k.AllocSegment(64)
	k.Revoke(q)
	k.SweepRevoke(q)
	k.CollectAddressSpace(nil)
	st := k.Stats()
	if st.SegmentsAllocated != 2 || st.SegmentsFreed < 1 ||
		st.Revocations != 1 || st.SweepsPerformed != 1 || st.GCRuns != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkedProgramRuns(t *testing.T) {
	// Separate assembly + link: main calls a library routine through a
	// LEAB-derived pointer to the linked offset — position independent,
	// so it runs wherever the kernel loads it.
	k := testKernel(t)
	main, err := asm.AssembleModule("main", `
		.import triple
		ldi  r2, =triple
		movip r3
		leab r3, r3, r2
		ldi  r4, 14
		jmpl r14, r3
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := asm.AssembleModule("lib", `
		.export triple
	triple:
		add r5, r4, r4
		add r5, r5, r4
		jmp r14
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Link(main, lib)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	th, err := k.Spawn(1, ip, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(100000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if th.Reg(5).Int() != 42 {
		t.Errorf("triple(14) = %d", th.Reg(5).Int())
	}
}

func TestMemlibEndToEnd(t *testing.T) {
	// The shipped sample library runs correctly when linked and loaded.
	k := testKernel(t)
	read := func(path string) string {
		t.Helper()
		b, err := osReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	use, err := asm.AssembleModule("usemem", read("../../programs/usemem.s"))
	if err != nil {
		t.Fatal(err)
	}
	lib, err := asm.AssembleModule("memlib", read("../../programs/memlib.s"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Link(use, lib)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := k.AllocSegment(4096)
	if err != nil {
		t.Fatal(err)
	}
	th, err := k.Spawn(1, ip, map[int]word.Word{1: seg.Word()})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(1_000_000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if th.Reg(5).Int() != 224 {
		t.Errorf("memsum = %d, want 224", th.Reg(5).Int())
	}
}
