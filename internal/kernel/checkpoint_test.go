package kernel

import (
	"bytes"
	"testing"

	"repro/internal/machine"
	"repro/internal/word"
)

// TestCheckpointRestoreDifferential is the headline property: run a
// program halfway, checkpoint, serialize, restore into a brand-new
// kernel, finish there — the architectural outcome must equal an
// uninterrupted run.
func TestCheckpointRestoreDifferential(t *testing.T) {
	prog := mustAssemble(`
		ldi r2, 40
		ldi r4, 0
	loop:
		ld   r5, r1, 0
		add  r5, r5, r2
		st   r1, 0, r5
		add  r4, r4, r5
		st   r1, 8, r4
		leai r6, r1, 16
		st   r6, 0, r6   ; park a capability in memory
		subi r2, r2, 1
		bnez r2, loop
		halt
	`)
	build := func() (*Kernel, *machine.Thread) {
		k := testKernel(t)
		ip, err := k.LoadProgram(prog, false)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := k.AllocSegment(4096)
		if err != nil {
			t.Fatal(err)
		}
		th, err := k.Spawn(3, ip, map[int]word.Word{1: seg.Word()})
		if err != nil {
			t.Fatal(err)
		}
		return k, th
	}

	// Reference: uninterrupted.
	kRef, thRef := build()
	kRef.Run(1_000_000)
	if thRef.State != machine.Halted {
		t.Fatalf("reference: %v %v", thRef.State, thRef.Fault)
	}

	// Checkpointed: stop partway, serialize, restore, finish.
	k1, th1 := build()
	for i := 0; i < 97; i++ {
		k1.M.Step()
	}
	if th1.Done() {
		t.Fatal("program finished before checkpoint — lengthen it")
	}
	cp, err := k1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	cp2, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}

	cfg := machine.MMachine()
	cfg.Clusters = 2
	cfg.SlotsPerCluster = 2
	cfg.PhysBytes = 4 << 20
	cfg.TrapCost = 10
	k2, err := Restore(cfg, cp2)
	if err != nil {
		t.Fatal(err)
	}
	if len(k2.M.Threads()) != 1 {
		t.Fatalf("restored %d threads", len(k2.M.Threads()))
	}
	th2 := k2.M.Threads()[0]
	k2.Run(1_000_000)
	if th2.State != machine.Halted {
		t.Fatalf("restored run: %v %v", th2.State, th2.Fault)
	}

	// Architectural equality with the reference.
	for r := 0; r < 16; r++ {
		if th2.Reg(r) != thRef.Reg(r) {
			t.Errorf("r%d: restored %v vs reference %v", r, th2.Reg(r), thRef.Reg(r))
		}
	}
	segBase := thRef.Reg(1)
	p1, _ := decodeWord(t, segBase)
	for off := uint64(0); off < 64; off += 8 {
		a, err := kRef.M.Space.ReadWord(p1 + off)
		if err != nil {
			t.Fatal(err)
		}
		b, err := k2.M.Space.ReadWord(p1 + off)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("mem+%d: restored %v vs reference %v", off, b, a)
		}
	}
	if th2.Instret != thRef.Instret {
		t.Errorf("instret: %d vs %d", th2.Instret, thRef.Instret)
	}
}

func decodeWord(t *testing.T, w word.Word) (uint64, error) {
	t.Helper()
	if !w.Tag {
		t.Fatal("expected a pointer word")
	}
	return w.Bits & ((1 << 54) - 1), nil
}

func TestCheckpointPreservesSwapAndLazyState(t *testing.T) {
	k := pagingKernel(t, 16)
	seg, err := k.AllocSegment(4096)
	if err != nil {
		t.Fatal(err)
	}
	k.WriteWords(seg, []word.Word{seg.Word(), word.FromInt(99)})
	if err := k.M.Space.SwapOut(seg.Base()); err != nil {
		t.Fatal(err)
	}
	lazy, err := k.AllocSegmentLazy(8 * 4096)
	if err != nil {
		t.Fatal(err)
	}

	cp, err := k.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	cfg.PhysBytes = 16 * 4096
	k2, err := Restore(cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	k2.EnableDemandPaging(0)

	// The swapped page restores into the backing store and pages in on
	// demand — with its embedded capability intact.
	prog := mustAssemble(`
		ld r2, r1, 0    ; swap-in; r2 = capability copy
		ld r3, r2, 8    ; use it
		st r4, 0, r5    ; touch the lazy segment (demand-zero post-restore)
		halt
	`)
	ip, err := k2.LoadProgram(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	th, err := k2.Spawn(1, ip, map[int]word.Word{
		1: seg.Word(), 4: lazy.Word(), 5: word.FromInt(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	k2.Run(1_000_000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if th.Reg(3).Int() != 99 {
		t.Errorf("capability through swap+checkpoint: r3 = %d", th.Reg(3).Int())
	}
}

func TestCheckpointSegmentsRemainAllocatable(t *testing.T) {
	k := testKernel(t)
	a, _ := k.AllocSegment(256)
	b, _ := k.AllocSegment(1024)
	cp, err := k.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.MMachine()
	cfg.Clusters = 2
	cfg.SlotsPerCluster = 2
	cfg.PhysBytes = 4 << 20
	k2, err := Restore(cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	// New allocations must not overlap restored segments.
	c, err := k2.AllocSegment(512)
	if err != nil {
		t.Fatal(err)
	}
	if c.Overlaps(a) || c.Overlaps(b) {
		t.Errorf("fresh segment %v overlaps restored %v / %v", c, a, b)
	}
	// Restored segments can be freed normally.
	if err := k2.FreeSegment(a); err != nil {
		t.Fatal(err)
	}
	if k2.Segments() != 2 {
		t.Errorf("Segments = %d", k2.Segments())
	}
}

func TestRestoreRejectsCorruptImages(t *testing.T) {
	k := testKernel(t)
	k.AllocSegment(256)
	cp, _ := k.Checkpoint()
	cfg := machine.MMachine()
	cfg.PhysBytes = 4 << 20

	// Overlapping segments.
	bad := *cp
	bad.Segments = map[uint64]uint{DefaultRegionBase: 10, DefaultRegionBase + 8: 10}
	if _, err := Restore(cfg, &bad); err == nil {
		t.Error("overlapping segment image accepted")
	}

	// Garbage stream.
	if _, err := DecodeCheckpoint(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage checkpoint decoded")
	}
}
