package kernel

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/vm"
	"repro/internal/word"
)

// incProg is a store-heavy loop that keeps dirtying its data segment —
// the workload an incremental chain has to track faithfully.
func incBuild(t *testing.T) (*Kernel, *machine.Thread) {
	t.Helper()
	prog := mustAssemble(`
		ldi r2, 120
		ldi r4, 0
	loop:
		ld   r5, r1, 0
		add  r5, r5, r2
		st   r1, 0, r5
		add  r4, r4, r5
		st   r1, 8, r4
		leai r6, r1, 16
		st   r6, 0, r6   ; park a capability in memory
		subi r2, r2, 1
		bnez r2, loop
		halt
	`)
	k := testKernel(t)
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := k.AllocSegment(4096)
	if err != nil {
		t.Fatal(err)
	}
	th, err := k.Spawn(3, ip, map[int]word.Word{1: seg.Word()})
	if err != nil {
		t.Fatal(err)
	}
	return k, th
}

// TestIncrementalChainDifferential captures a base plus two deltas at
// arbitrary points of a run, then restores the chain at EVERY
// generation, finishes each restored machine, and demands the reference
// outcome. Deltas must also be small: only the dirtied pages.
func TestIncrementalChainDifferential(t *testing.T) {
	kRef, thRef := incBuild(t)
	kRef.Run(1_000_000)
	if thRef.State != machine.Halted {
		t.Fatalf("reference: %v %v", thRef.State, thRef.Fault)
	}

	k, th := incBuild(t)
	var chain []*Checkpoint
	var st *CaptureState
	for g := 0; g < 3; g++ {
		for i := 0; i < 90; i++ {
			k.M.Step()
		}
		cp, nst, err := k.CheckpointIncremental(st)
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, cp)
		st = nst
	}
	if th.Done() {
		t.Fatal("program finished before the chain was captured — lengthen it")
	}
	if chain[0].Delta {
		t.Fatal("first generation is not a base image")
	}
	for g := 1; g < len(chain); g++ {
		if !chain[g].Delta {
			t.Fatalf("generation %d is not a delta", g)
		}
		if len(chain[g].Resident) >= len(chain[0].Resident) {
			t.Fatalf("delta %d carries %d pages, base carries %d — not incremental",
				g, len(chain[g].Resident), len(chain[0].Resident))
		}
	}

	cfg := machine.MMachine()
	cfg.Clusters = 2
	cfg.SlotsPerCluster = 2
	cfg.PhysBytes = 4 << 20
	cfg.TrapCost = 10
	for g := 1; g <= len(chain); g++ {
		k2, err := RestoreChain(cfg, chain[:g])
		if err != nil {
			t.Fatalf("generation %d: %v", g, err)
		}
		k2.Run(1_000_000)
		th2 := k2.M.Threads()[0]
		if th2.State != machine.Halted {
			t.Fatalf("generation %d: restored run %v %v", g, th2.State, th2.Fault)
		}
		for r := 0; r < 16; r++ {
			if th2.Reg(r) != thRef.Reg(r) {
				t.Errorf("generation %d r%d: restored %v vs reference %v", g, r, th2.Reg(r), thRef.Reg(r))
			}
		}
	}
}

// TestIncrementalDeltaCompleteness drives the mutations dirty bits
// cannot see — swap round trips, backing-store scrubs, unmapped pages —
// and checks each lands in the delta (or its tombstones).
func TestIncrementalDeltaCompleteness(t *testing.T) {
	k := testKernel(t)
	seg, err := k.AllocSegment(4 * vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	base := seg.Addr()
	s := k.M.Space
	_, st, err := k.CheckpointIncremental(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Swap a page out: its contents move to the backing store.
	if err := s.WriteWord(base, word.FromInt(11)); err != nil {
		t.Fatal(err)
	}
	if err := s.SwapOut(base); err != nil {
		t.Fatal(err)
	}
	cp, st, err := k.CheckpointIncremental(st)
	if err != nil {
		t.Fatal(err)
	}
	page := base &^ uint64(vm.PageMask)
	if len(cp.Swapped) != 1 || cp.Swapped[0].VAddr != page {
		t.Fatalf("swap-out not in delta: %+v", cp.Swapped)
	}
	found := false
	for _, p := range cp.Dropped {
		if p == page {
			found = true
		}
	}
	if !found {
		t.Fatalf("swapped-out page not tombstoned from residency: %v", cp.Dropped)
	}

	// Scrub the swapped page in place (FreeSegment does this): content
	// change with no dirty bit anywhere.
	if err := s.ZeroWords(base, base+64); err != nil {
		t.Fatal(err)
	}
	cp, st, err = k.CheckpointIncremental(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Swapped) != 1 || cp.Swapped[0].VAddr != page || cp.Swapped[0].Words[0].Int() != 0 {
		t.Fatalf("in-place swap scrub not in delta: %+v", cp.Swapped)
	}

	// Swap back in: the page is resident again (fresh mapping, clean
	// PTE) and gone from the backing store.
	if err := s.SwapIn(base); err != nil {
		t.Fatal(err)
	}
	cp, st, err = k.CheckpointIncremental(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Resident) != 1 || cp.Resident[0].VAddr != page {
		t.Fatalf("swap-in not in delta: %d resident pages", len(cp.Resident))
	}
	if len(cp.SwapDropped) != 1 || cp.SwapDropped[0] != page {
		t.Fatalf("swap-in not tombstoned from backing store: %v", cp.SwapDropped)
	}

	// Quiescent interval → empty delta.
	cp, _, err = k.CheckpointIncremental(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Resident) != 0 || len(cp.Swapped) != 0 || len(cp.Dropped) != 0 || len(cp.SwapDropped) != 0 {
		t.Fatalf("quiescent delta not empty: %d/%d pages, %d/%d tombstones",
			len(cp.Resident), len(cp.Swapped), len(cp.Dropped), len(cp.SwapDropped))
	}
}

// TestIncrementalStaleStateFallsBackToBase: a CaptureState taken from a
// different machine (e.g. before a restore swapped the kernel) must not
// produce a bogus delta — the capture silently re-bases.
func TestIncrementalStaleStateFallsBackToBase(t *testing.T) {
	k1, _ := incBuild(t)
	_, st, err := k1.CheckpointIncremental(nil)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := incBuild(t)
	cp, _, err := k2.CheckpointIncremental(st)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Delta {
		t.Fatal("stale capture state produced a delta against the wrong machine")
	}
}

// TestMaterializeRejectsMalformedChains covers the chain-shape errors
// and the guard against restoring a bare delta.
func TestMaterializeRejectsMalformedChains(t *testing.T) {
	if _, err := Materialize(nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := Materialize([]*Checkpoint{{Delta: true}}); err == nil {
		t.Error("delta-first chain accepted")
	}
	if _, err := Materialize([]*Checkpoint{{}, {}}); err == nil {
		t.Error("base image mid-chain accepted")
	}
	cfg := machine.MMachine()
	if _, err := Restore(cfg, &Checkpoint{Delta: true}); err == nil {
		t.Error("bare delta restore accepted")
	}
}
