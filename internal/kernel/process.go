package kernel

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/word"
)

// This file adds the kernel's process layer: software multiplexing of
// many processes onto the machine's fixed hardware thread slots.
//
// The guarded-pointer twist is what *isn't* here: starting a thread
// from a different process installs no page table, flushes nothing,
// and touches no protection state — a process's entire protection
// domain is the set of capabilities in its registers and reachable
// segments. Software scheduling is register load/store plus slot
// bookkeeping, which is why the paper can claim fast context switching
// even above the hardware thread limit.

// Process is a kernel-managed protection domain: an owner for segments
// and threads. Segments allocated through the process are freed when
// it exits, and its address space can be garbage-collected as a unit.
type Process struct {
	ID     int
	Domain int

	k        *Kernel
	segments []core.Pointer
	live     int  // running hardware threads
	pending  int  // queued thread starts
	exited   bool // Exit called
	Instret  uint64
}

type pendingStart struct {
	proc  *Process
	entry core.Pointer
	regs  map[int]word.Word
}

// NewProcess creates an empty process in a fresh protection domain.
func (k *Kernel) NewProcess() *Process {
	p := &Process{ID: len(k.procs) + 1, Domain: k.NewDomain(), k: k}
	k.procs = append(k.procs, p)
	return p
}

// Processes returns all processes ever created.
func (k *Kernel) Processes() []*Process { return k.procs }

// AllocSegment allocates a segment owned by the process.
func (p *Process) AllocSegment(size uint64) (core.Pointer, error) {
	if p.exited {
		return core.Pointer{}, fmt.Errorf("kernel: process %d has exited", p.ID)
	}
	seg, err := p.k.AllocSegment(size)
	if err != nil {
		return core.Pointer{}, err
	}
	p.segments = append(p.segments, seg)
	return seg, nil
}

// AllocSegmentLazy allocates a process-owned lazy segment (pages
// materialize on first touch via the demand pager).
func (p *Process) AllocSegmentLazy(size uint64) (core.Pointer, error) {
	if p.exited {
		return core.Pointer{}, fmt.Errorf("kernel: process %d has exited", p.ID)
	}
	seg, err := p.k.AllocSegmentLazy(size)
	if err != nil {
		return core.Pointer{}, err
	}
	p.segments = append(p.segments, seg)
	return seg, nil
}

// LoadProgram loads a user program into a process-owned code segment.
func (p *Process) LoadProgram(prog *asm.Program) (core.Pointer, error) {
	seg, err := p.AllocSegment(prog.ByteSize())
	if err != nil {
		return core.Pointer{}, err
	}
	if err := p.k.WriteWords(seg, prog.Words); err != nil {
		return core.Pointer{}, err
	}
	return core.Make(core.PermExecuteUser, seg.LogLen(), seg.Base())
}

// Start requests a thread in this process at entry. If a hardware slot
// is free the thread starts immediately; otherwise the start is queued
// and dispatched by RunScheduled when a slot opens.
func (p *Process) Start(entry core.Pointer, regs map[int]word.Word) error {
	if p.exited {
		return fmt.Errorf("kernel: process %d has exited", p.ID)
	}
	if th, err := p.k.Spawn(p.Domain, entry, regs); err == nil {
		p.live++
		p.k.owner[th] = p
		return nil
	}
	p.pending++
	p.k.queue = append(p.k.queue, pendingStart{proc: p, entry: entry, regs: regs})
	return nil
}

// Live returns the number of running hardware threads of the process.
func (p *Process) Live() int { return p.live }

// Pending returns the number of queued thread starts.
func (p *Process) Pending() int { return p.pending }

// Exited reports whether the process has terminated.
func (p *Process) Exited() bool { return p.exited }

// Exit tears the process down: all owned segments are freed (zeroed
// and their pages reclaimed), revoking every capability into them —
// the single-address-space hygiene of Sec 4.3. Live threads must have
// finished first.
func (p *Process) Exit() error {
	if p.exited {
		return nil
	}
	if p.live > 0 || p.pending > 0 {
		return fmt.Errorf("kernel: process %d still has %d live / %d pending threads",
			p.ID, p.live, p.pending)
	}
	for _, seg := range p.segments {
		if err := p.k.FreeSegment(seg); err != nil {
			return err
		}
	}
	p.segments = nil
	p.exited = true
	return nil
}

// reap removes finished hardware threads, credits their instruction
// counts to their processes, and dispatches queued starts into the
// freed slots. It returns the number of threads reaped.
func (k *Kernel) reap() int {
	n := 0
	for _, t := range append([]*machine.Thread(nil), k.M.Threads()...) {
		if !t.Done() {
			continue
		}
		p := k.owner[t]
		if p == nil {
			continue // not process-managed (raw Spawn)
		}
		p.Instret += t.Instret
		p.live--
		delete(k.owner, t)
		if err := k.M.RemoveThread(t); err == nil {
			n++
		}
	}
	for len(k.queue) > 0 {
		ps := k.queue[0]
		th, err := k.Spawn(ps.proc.Domain, ps.entry, ps.regs)
		if err != nil {
			break // no slot yet
		}
		k.queue = k.queue[1:]
		ps.proc.pending--
		ps.proc.live++
		k.owner[th] = ps.proc
	}
	return n
}

// RunScheduled drives the machine like Run but reaps finished threads
// and dispatches queued process threads as slots free up, so workloads
// larger than the hardware thread count complete. It returns the
// cycles executed.
func (k *Kernel) RunScheduled(maxCycles uint64) uint64 {
	var c uint64
	for c = 0; c < maxCycles; c++ {
		k.reap()
		if k.M.Done() && len(k.queue) == 0 {
			break
		}
		k.M.Step()
	}
	k.reap()
	return c
}
