package kernel

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/vm"
	"repro/internal/word"
)

func TestProcessBasics(t *testing.T) {
	k := testKernel(t)
	p := k.NewProcess()
	q := k.NewProcess()
	if p.ID == q.ID || p.Domain == q.Domain {
		t.Error("processes share identity")
	}
	if len(k.Processes()) != 2 {
		t.Errorf("Processes = %d", len(k.Processes()))
	}
	seg, err := p.AllocSegment(256)
	if err != nil {
		t.Fatal(err)
	}
	if seg.SegSize() != 256 {
		t.Errorf("size = %d", seg.SegSize())
	}
}

func TestProcessRunAndExit(t *testing.T) {
	k := testKernel(t)
	p := k.NewProcess()
	ip, err := p.LoadProgram(mustAssemble(`
		ldi r2, 9
		mul r2, r2, r2
		halt
	`))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(ip, nil); err != nil {
		t.Fatal(err)
	}
	if p.Live() != 1 {
		t.Errorf("Live = %d", p.Live())
	}
	k.RunScheduled(10000)
	if p.Live() != 0 {
		t.Errorf("Live = %d after completion", p.Live())
	}
	if p.Instret != 3 {
		t.Errorf("Instret = %d, want 3", p.Instret)
	}
	if err := p.Exit(); err != nil {
		t.Fatal(err)
	}
	if !p.Exited() {
		t.Error("not exited")
	}
	if k.Segments() != 0 {
		t.Errorf("segments leaked: %d", k.Segments())
	}
	// Post-exit use is rejected.
	if _, err := p.AllocSegment(64); err == nil {
		t.Error("alloc after exit")
	}
	if err := p.Start(ip, nil); err == nil {
		t.Error("start after exit")
	}
	if err := p.Exit(); err != nil {
		t.Error("double exit should be idempotent")
	}
}

func TestExitRefusesWithLiveThreads(t *testing.T) {
	k := testKernel(t)
	p := k.NewProcess()
	ip, _ := p.LoadProgram(mustAssemble("loop: br loop"))
	p.Start(ip, nil)
	if err := p.Exit(); err == nil {
		t.Error("exit with live thread accepted")
	}
}

func TestSchedulerOversubscription(t *testing.T) {
	// 12 processes on a 4-slot machine: the scheduler must run them
	// all to completion by recycling slots.
	k := testKernel(t) // 2 clusters × 2 slots
	prog := mustAssemble(`
		ldi r3, 20
	loop:
		st r1, 0, r3
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	var procs []*Process
	for i := 0; i < 12; i++ {
		p := k.NewProcess()
		ip, err := p.LoadProgram(prog)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := p.AllocSegment(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Start(ip, map[int]word.Word{1: seg.Word()}); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	queued := 0
	for _, p := range procs {
		queued += p.Pending()
	}
	if queued != 8 {
		t.Errorf("pending = %d, want 8 (12 procs, 4 slots)", queued)
	}
	k.RunScheduled(1_000_000)
	for _, p := range procs {
		if p.Live() != 0 || p.Pending() != 0 {
			t.Errorf("process %d: live=%d pending=%d", p.ID, p.Live(), p.Pending())
		}
		if p.Instret == 0 {
			t.Errorf("process %d never ran", p.ID)
		}
		if err := p.Exit(); err != nil {
			t.Errorf("exit %d: %v", p.ID, err)
		}
	}
	if k.Segments() != 0 {
		t.Errorf("segments leaked: %d", k.Segments())
	}
}

func TestProcessExitRevokesItsCapabilities(t *testing.T) {
	// After a process exits, capabilities it handed out are dead: its
	// segments were freed (zeroed, pages reclaimed when unshared).
	k := testKernel(t)
	p := k.NewProcess()
	seg, _ := p.AllocSegment(4096)
	k.WriteWords(seg, []word.Word{word.FromInt(7)})
	if err := p.Exit(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ReadWord(seg); err == nil {
		t.Error("capability into exited process's segment still works")
	}
}

func TestSchedulerMixedWithRawThreads(t *testing.T) {
	// Raw Spawn threads (no owning process) coexist with scheduled
	// ones; reap must not touch them (they stay resident when Done).
	k := testKernel(t)
	ipRaw, _ := k.LoadProgram(mustAssemble("halt"), false)
	raw, _ := k.Spawn(0, ipRaw, nil)

	p := k.NewProcess()
	ip, _ := p.LoadProgram(mustAssemble("ldi r1, 1\nhalt"))
	p.Start(ip, nil)
	k.RunScheduled(10000)
	if raw.State != machine.Halted {
		t.Errorf("raw thread state: %v", raw.State)
	}
	// Raw thread still resident; process thread reaped.
	found := false
	for _, th := range k.M.Threads() {
		if th == raw {
			found = true
		}
	}
	if !found {
		t.Error("reap removed a non-process thread")
	}
}

func TestRunScheduledStopsAtBudget(t *testing.T) {
	k := testKernel(t)
	p := k.NewProcess()
	ip, _ := p.LoadProgram(mustAssemble("loop: br loop"))
	p.Start(ip, nil)
	c := k.RunScheduled(500)
	if c != 500 {
		t.Errorf("ran %d cycles, want budget 500", c)
	}
}

func TestProcessLazySegmentOwnership(t *testing.T) {
	k := testKernel(t)
	k.EnableDemandPaging(0)
	p := k.NewProcess()
	seg, err := p.AllocSegmentLazy(4 * vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	_ = seg
	if err := p.Exit(); err != nil {
		t.Fatal(err)
	}
	if k.Segments() != 0 {
		t.Errorf("lazy segment leaked: %d live", k.Segments())
	}
	if _, err := p.AllocSegmentLazy(64); err == nil {
		t.Error("lazy alloc after exit accepted")
	}
}
