package kernel

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vm"
	"repro/internal/word"
)

// This file implements whole-system checkpoint/restore: the complete
// architectural state — segment layout, resident and swapped pages
// (tag bits included), and every thread's registers and instruction
// pointer — serialized with encoding/gob and rebuilt into a fresh
// kernel.
//
// A guarded-pointer machine checkpoints unusually cleanly: protection
// state IS the data. There are no protection tables, ASIDs or
// capability lists to capture; saving the tagged words saves every
// capability in the system.
//
// Scope: architectural state only. Timing state (cache contents, TLB,
// cycle counters) restarts cold, and Go-side hooks (trap services,
// gates, process objects) are code, not data — re-register them after
// restore.

// Checkpoint is the serializable system image. A base image (Delta
// false) is self-contained; a delta image (incremental.go) holds only
// the pages changed since its parent generation plus tombstones, and
// can be consumed only through Materialize/RestoreChain.
type Checkpoint struct {
	RegionBase uint64
	RegionLog  uint

	Segments   map[uint64]uint
	Revoked    map[uint64]bool
	NextDomain int

	Resident []PageImage
	Swapped  []PageImage
	Threads  []ThreadImage

	// Delta marks an incremental image: Resident/Swapped hold only the
	// pages changed since the parent generation. Dropped/SwapDropped are
	// tombstones — pages present in the parent that no longer exist.
	// Segment/thread metadata is always captured in full (it is small).
	Delta       bool
	Dropped     []uint64
	SwapDropped []uint64
}

// PageImage is one page of tagged words; Frame is meaningful only for
// resident pages (placement is preserved exactly).
type PageImage struct {
	VAddr uint64
	Frame uint64
	Words []word.Word
}

// ThreadImage is one hardware thread's architectural state.
type ThreadImage struct {
	Domain  int
	State   machine.ThreadState
	IPWord  word.Word
	Regs    [16]word.Word
	Instret uint64
}

// Checkpoint captures the current system image. Call it with the
// machine quiescent (between Run calls); blocked threads are captured
// as ready (their in-flight memory operation has already committed
// functionally).
func (k *Kernel) Checkpoint() (*Checkpoint, error) {
	cp := &Checkpoint{
		RegionBase: k.regionBase,
		RegionLog:  k.regionLog,
		Segments:   make(map[uint64]uint, len(k.segments)),
		Revoked:    make(map[uint64]bool, len(k.revoked)),
		NextDomain: k.nextDomain,
	}
	for b, l := range k.segments {
		cp.Segments[b] = l
	}
	for b := range k.revoked {
		cp.Revoked[b] = true
	}

	var walkErr error
	k.M.Space.PT.Walk(func(page uint64, pte vm.PTE) bool {
		img, err := k.readPage(page, pte.Frame)
		if err != nil {
			walkErr = err
			return false
		}
		cp.Resident = append(cp.Resident, img)
		return true
	})
	if walkErr != nil {
		return nil, walkErr
	}
	for _, page := range k.M.Space.SwapPageList() {
		words, _ := k.M.Space.SwapPage(page)
		cp.Swapped = append(cp.Swapped, PageImage{VAddr: page, Words: words})
	}

	for _, t := range k.M.Threads() {
		cp.Threads = append(cp.Threads, ThreadImage{
			Domain:  t.Domain,
			State:   t.State,
			IPWord:  t.IP.Word(),
			Regs:    t.Regs,
			Instret: t.Instret,
		})
	}
	return cp, nil
}

// Restore rebuilds a kernel+machine from a checkpoint under the given
// machine configuration (which must provide at least as much physical
// memory as the image uses). Thread fault state is not preserved:
// faulted threads restore as faulted with a nil fault record.
func Restore(cfg machine.Config, cp *Checkpoint) (*Kernel, error) {
	if cp.Delta {
		return nil, fmt.Errorf("kernel: cannot restore a delta image directly; materialize its chain first")
	}
	k, err := NewWithRegion(cfg, cp.RegionBase, cp.RegionLog)
	if err != nil {
		return nil, err
	}
	k.nextDomain = cp.NextDomain

	for base, logLen := range cp.Segments {
		if err := k.VAS.Reserve(base, logLen); err != nil {
			return nil, fmt.Errorf("kernel: restore segment %#x: %w", base, err)
		}
		k.segments[base] = logLen
		for _, pg := range pagesOf(base, uint64(1)<<logLen) {
			k.pageRefs[pg]++
		}
	}
	for base := range cp.Revoked {
		k.revoked[base] = true
	}

	for _, img := range cp.Resident {
		if err := k.M.Space.Frames.Claim(img.Frame); err != nil {
			return nil, fmt.Errorf("kernel: restore page %#x: %w", img.VAddr, err)
		}
		if err := k.M.Space.PT.Map(img.VAddr, img.Frame); err != nil {
			return nil, err
		}
		for i, w := range img.Words {
			if err := k.M.Space.Phys.WriteWord(img.Frame+uint64(i)*word.BytesPerWord, w); err != nil {
				return nil, err
			}
		}
	}
	for _, img := range cp.Swapped {
		if err := k.M.Space.RestoreSwapPage(img.VAddr, img.Words); err != nil {
			return nil, err
		}
	}

	for _, ti := range cp.Threads {
		t, err := k.M.AddThread(ti.Domain)
		if err != nil {
			return nil, err
		}
		ip, err := core.Decode(ti.IPWord)
		if err != nil {
			return nil, fmt.Errorf("kernel: restore thread IP: %w", err)
		}
		if err := t.SetIP(ip); err != nil {
			return nil, err
		}
		t.Regs = ti.Regs
		t.Instret = ti.Instret
		switch ti.State {
		case machine.Halted:
			t.State = machine.Halted
		case machine.Faulted:
			t.State = machine.Faulted
		default:
			t.State = machine.Ready // blocked operations already committed
		}
	}
	return k, nil
}

// Encode writes the checkpoint with encoding/gob.
func (cp *Checkpoint) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(cp)
}

// DecodeCheckpoint reads a checkpoint written by Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, err
	}
	return &cp, nil
}
