package kernel

import (
	"errors"
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/word"
)

// TestCheckpointRecoveryUnderInjectedFault is the single-node recovery
// loop: checkpoint a running system, corrupt its memory underneath the
// parity plane, watch the corruption surface as an explicit machine
// check (never a silent wrong answer), then restore from the checkpoint
// and finish — the recovered run's architectural state must equal an
// uninterrupted run's.
func TestCheckpointRecoveryUnderInjectedFault(t *testing.T) {
	prog := mustAssemble(`
		ldi r2, 30
		ldi r4, 0
	loop:
		ld   r5, r1, 0
		add  r5, r5, r2
		st   r1, 0, r5
		add  r4, r4, r5
		subi r2, r2, 1
		bnez r2, loop
		halt
	`)
	build := func() (*Kernel, *machine.Thread) {
		k := testKernel(t)
		ip, err := k.LoadProgram(prog, false)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := k.AllocSegment(4096)
		if err != nil {
			t.Fatal(err)
		}
		th, err := k.Spawn(3, ip, map[int]word.Word{1: seg.Word()})
		if err != nil {
			t.Fatal(err)
		}
		k.M.Space.Phys.EnableParity()
		return k, th
	}

	// Reference: uninterrupted.
	kRef, thRef := build()
	kRef.Run(1_000_000)
	if thRef.State != machine.Halted {
		t.Fatalf("reference: %v %v", thRef.State, thRef.Fault)
	}

	// Faulted: checkpoint partway, then flip a bit under the thread's
	// working word. The next load must machine-check.
	k1, th1 := build()
	for i := 0; i < 60; i++ {
		k1.M.Step()
	}
	if th1.Done() {
		t.Fatal("program finished before checkpoint — lengthen it")
	}
	cp, err := k1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	pw, _ := decodeWord(t, th1.Reg(1))
	paddr, _, err := k1.M.Space.Translate(pw)
	if err != nil {
		t.Fatal(err)
	}
	if err := k1.M.Space.Phys.FlipBit(paddr, 17); err != nil {
		t.Fatal(err)
	}
	k1.Run(1_000_000)
	if th1.State != machine.Faulted {
		t.Fatalf("corrupted run: %v (want an explicit fault, not %v)", th1.State, th1.Fault)
	}
	var pe *mem.ParityError
	if !errors.As(th1.Fault, &pe) {
		t.Fatalf("fault %v, want *mem.ParityError", th1.Fault)
	}

	// Recover: restore the checkpoint into a fresh kernel and finish.
	cfg := machine.MMachine()
	cfg.Clusters = 2
	cfg.SlotsPerCluster = 2
	cfg.PhysBytes = 4 << 20
	cfg.TrapCost = 10
	k2, err := Restore(cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	th2 := k2.M.Threads()[0]
	k2.Run(1_000_000)
	if th2.State != machine.Halted {
		t.Fatalf("recovered run: %v %v", th2.State, th2.Fault)
	}
	if th2.Instret != thRef.Instret {
		t.Fatalf("instret %d != reference %d", th2.Instret, thRef.Instret)
	}
	for r := 0; r < 16; r++ {
		if th2.Reg(r) != thRef.Reg(r) {
			t.Errorf("r%d: recovered %v vs reference %v", r, th2.Reg(r), thRef.Reg(r))
		}
	}
}
