package kernel

import (
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/word"
)

// This file implements the two expensive maintenance operations that
// capability systems without protected indirection must provide in
// software (Sec 4.3): sweeping the address space to rewrite or destroy
// copies of a capability, and garbage-collecting virtual address space
// by chasing tag bits.

// SweepStats reports the cost of a sweep — the quantity E9 compares
// against unmap-based revocation.
type SweepStats struct {
	SegmentsScanned   int
	WordsScanned      uint64
	PointersRewritten uint64
}

// SweepRevoke scans every live segment and destroys (untags) every
// guarded pointer into the target pointer's segment. This is the
// paper's "scanning the entire virtual address space to update all
// copies" path: correct, but costing a full sweep, which is why
// unmapping (FreeSegment/Revoke) is the preferred mechanism.
func (k *Kernel) SweepRevoke(target core.Pointer) (SweepStats, error) {
	var st SweepStats
	k.stats.SweepsPerformed++
	k.gcPhase("sweep-revoke", true)
	defer k.gcPhase("sweep-revoke", false)
	for base, logLen := range k.segments {
		if k.revoked[base] {
			continue // contents already unmapped
		}
		st.SegmentsScanned++
		size := uint64(1) << logLen
		for off := uint64(0); off < size; off += word.BytesPerWord {
			w, err := k.M.Space.ReadWord(base + off)
			if err != nil {
				return st, err
			}
			st.WordsScanned++
			if !w.Tag {
				continue
			}
			p, err := core.Decode(w)
			if err != nil {
				continue // malformed tagged word: not a revocation target
			}
			if target.Contains(p.Addr()) {
				if err := k.M.Space.WriteWord(base+off, w.Untag()); err != nil {
					return st, err
				}
				st.PointersRewritten++
			}
		}
	}
	// Registers are part of the reachable state too: scrub pointers
	// held by live threads.
	for _, t := range k.M.Threads() {
		for r := 0; r < len(t.Regs); r++ {
			w := t.Regs[r]
			if !w.Tag {
				continue
			}
			if p, err := core.Decode(w); err == nil && target.Contains(p.Addr()) {
				t.Regs[r] = w.Untag()
				st.PointersRewritten++
			}
		}
	}
	return st, nil
}

// Revoke invalidates every pointer into p's segment at once by
// unmapping its pages — the cheap revocation path of Sec 4.3. The
// segment's virtual range stays reserved (so it is not reissued) until
// FreeSegment releases it; accesses through stale pointers raise page
// faults.
//
// Revocation "operates on a page granularity while segments may be any
// size" (Sec 4.3): only pages wholly inside the segment can be
// unmapped. Where the segment shares a page with live neighbours the
// kernel can only destroy the data (zero the words); stale pointers to
// those bytes read zeroes rather than faulting — precisely the
// limitation the paper describes.
func (k *Kernel) Revoke(p core.Pointer) error {
	base, logLen, ok := k.findSegment(p.Addr())
	if !ok {
		return errUnknownSegment(p)
	}
	size := uint64(1) << logLen
	end := base + size
	for _, pg := range pagesOf(base, size) {
		if pg >= base && pg+vm.PageSize <= end {
			if _, err := k.M.Space.UnmapRange(pg, vm.PageSize); err != nil {
				return err
			}
			continue
		}
		lo, hi := pg, pg+vm.PageSize
		if lo < base {
			lo = base
		}
		if hi > end {
			hi = end
		}
		if err := k.M.Space.ZeroWords(lo, hi); err != nil {
			return err
		}
	}
	k.M.Cache.InvalidateRange(base, size)
	k.revoked[base] = true
	k.stats.Revocations++
	return nil
}

// GCStats reports an address-space collection.
type GCStats struct {
	RootPointers  int
	LiveSegments  int
	FreedSegments int
	WordsScanned  uint64
}

// CollectAddressSpace garbage-collects the virtual address space:
// starting from the given roots (plus every live thread's registers and
// instruction pointer), it marks the segments reachable through guarded
// pointers — "the live segments can be found by recursively scanning
// the reachable segments from all live processes" (Sec 4.3), with
// pointers self-identifying via the tag bit — and frees everything
// else.
func (k *Kernel) CollectAddressSpace(roots []word.Word) (GCStats, error) {
	var st GCStats
	k.stats.GCRuns++
	k.gcPhase("gc-mark", true)

	var queue []uint64 // segment bases to scan
	marked := make(map[uint64]bool)
	markWord := func(w word.Word) {
		if !w.Tag {
			return
		}
		p, err := core.Decode(w)
		if err != nil {
			return
		}
		base, _, ok := k.findSegment(p.Addr())
		if !ok || marked[base] {
			return
		}
		marked[base] = true
		queue = append(queue, base)
	}

	for _, w := range roots {
		st.RootPointers++
		markWord(w)
	}
	for _, t := range k.M.Threads() {
		markWord(t.IP.Word())
		for _, w := range t.Regs {
			markWord(w)
		}
	}

	for len(queue) > 0 {
		base := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if k.revoked[base] {
			continue // contents unmapped; nothing to scan
		}
		size := uint64(1) << k.segments[base]
		for off := uint64(0); off < size; off += word.BytesPerWord {
			w, err := k.M.Space.ReadWord(base + off)
			if err != nil {
				return st, err
			}
			st.WordsScanned++
			markWord(w)
		}
	}

	k.gcPhase("gc-mark", false)
	k.gcPhase("gc-sweep", true)
	defer k.gcPhase("gc-sweep", false)

	st.LiveSegments = len(marked)
	for base := range k.segments {
		if marked[base] {
			continue
		}
		p, err := core.Make(core.PermReadWrite, k.segments[base], base)
		if err != nil {
			return st, err
		}
		if err := k.FreeSegment(p); err != nil {
			return st, err
		}
		st.FreedSegments++
	}
	return st, nil
}

// gcPhase brackets a kernel maintenance phase in the event trace.
func (k *Kernel) gcPhase(name string, begin bool) {
	tr := k.M.Tracer
	if tr == nil || !tr.Enabled(telemetry.EvGCPhase) {
		return
	}
	code := int64(0)
	if begin {
		code = 1
	}
	tr.Emit(telemetry.Event{Cycle: k.M.Cycle(), Kind: telemetry.EvGCPhase,
		Thread: -1, Cluster: -1, Domain: -1, Code: code, Detail: name})
}

func errUnknownSegment(p core.Pointer) error {
	return &core.Fault{Code: core.FaultBounds, Op: "KERNEL", Msg: "unknown segment " + p.String()}
}
