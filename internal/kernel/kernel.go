// Package kernel is the privileged runtime of the simulated machine.
//
// In a guarded-pointer system almost nothing needs to be privileged
// (Sec 2.3): the kernel's job reduces to allocating segments out of the
// single shared virtual address space (with the buddy discipline of
// Sec 4.2), minting the initial pointers for processes (the SETPTR
// authority), wiring up protected subsystems (Figs. 3 & 4), revoking
// segments by unmapping (Sec 4.3), and garbage-collecting the address
// space by chasing tag bits (Sec 4.3).
//
// The kernel runs as Go code with supervisor authority over the
// machine, standing in for the small privileged code segments a real
// M-Machine would boot with; everything user-level runs as real
// simulated instructions.
package kernel

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/buddy"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/word"
)

// Default virtual-region geometry: user segments are carved from a
// 256MB region at 256MB — the base must be aligned on the region size
// so every buddy block is aligned on its own length, as guarded-pointer
// segments require. (The full 2^54 space exists; the buddy region just
// bounds what this kernel hands out.)
const (
	DefaultRegionBase = 1 << 28
	DefaultRegionLog  = 28
	// MinSegLog is the smallest segment the kernel allocates (one
	// word). The architecture supports single-byte segments; the
	// kernel's word floor keeps segments loadable/storable.
	MinSegLog = 3
)

// Kernel owns a machine and its address space.
type Kernel struct {
	M   *machine.Machine
	VAS *buddy.Allocator

	segments   map[uint64]uint // base → logLen for every live segment
	pageRefs   map[uint64]int  // page base → count of live segments overlapping it
	nextDomain int
	services   map[int64]Service
	gates      map[int64]gate
	revoked    map[uint64]bool // segments unmapped by Revoke but not yet freed
	procs      []*Process
	owner      map[*machine.Thread]*Process
	queue      []pendingStart
	stats      Stats

	pagerReserve       int
	clockHand          uint64
	zeroCost, swapCost uint64
	pagingStats        PagingStats

	regionBase uint64
	regionLog  uint
}

// Stats counts kernel-level events.
type Stats struct {
	SegmentsAllocated uint64
	SegmentsFreed     uint64
	Revocations       uint64
	SweepsPerformed   uint64
	GCRuns            uint64
}

// Service is a kernel-registered trap service. It runs with the
// trapping thread stopped; registers are its argument/result interface.
type Service func(k *Kernel, t *machine.Thread) error

// Trap codes understood by the default handler.
const (
	TrapAllocSegment int64 = 1 // r1 = size in bytes → r1 = r/w pointer
	TrapFreeSegment  int64 = 2 // r1 = pointer
	TrapCallGate     int64 = 3 // r2 = service id: kernel-mediated domain call
	// TrapServiceBase is the first code available to RegisterService.
	TrapServiceBase int64 = 16
)

// New boots a kernel over a fresh machine with the default segment
// region.
func New(cfg machine.Config) (*Kernel, error) {
	return NewWithRegion(cfg, DefaultRegionBase, DefaultRegionLog)
}

// NewWithRegion boots a kernel whose segments are carved from the
// 2^logSize-byte region at base (base must be aligned on the region
// size). Multicomputer configurations give each node a region inside
// its slice of the shared 54-bit space.
func NewWithRegion(cfg machine.Config, base uint64, logSize uint) (*Kernel, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	vas, err := buddy.New(base, logSize, MinSegLog)
	if err != nil {
		return nil, err
	}
	k := &Kernel{
		M:          m,
		VAS:        vas,
		segments:   make(map[uint64]uint),
		pageRefs:   make(map[uint64]int),
		services:   make(map[int64]Service),
		revoked:    make(map[uint64]bool),
		owner:      make(map[*machine.Thread]*Process),
		regionBase: base,
		regionLog:  logSize,
	}
	m.OnTrap = k.handleTrap
	return k, nil
}

// Stats returns a copy of the kernel counters.
func (k *Kernel) Stats() Stats { return k.stats }

// RegisterMetrics publishes the kernel counters (kernel.*) plus the
// whole machine namespace (machine.*, cache.l1.*, vm.*) into reg.
func (k *Kernel) RegisterMetrics(reg *telemetry.Registry) {
	k.M.RegisterMetrics(reg)
	reg.Counter("kernel.segments_allocated", func() uint64 { return k.stats.SegmentsAllocated })
	reg.Counter("kernel.segments_freed", func() uint64 { return k.stats.SegmentsFreed })
	reg.Counter("kernel.revocations", func() uint64 { return k.stats.Revocations })
	reg.Counter("kernel.sweeps", func() uint64 { return k.stats.SweepsPerformed })
	reg.Counter("kernel.gc_runs", func() uint64 { return k.stats.GCRuns })
	reg.Register("kernel.live_segments", func() float64 { return float64(len(k.segments)) })
	reg.Counter("kernel.paging.demand_zero", func() uint64 { return k.pagingStats.DemandZero })
	reg.Counter("kernel.paging.swap_ins", func() uint64 { return k.pagingStats.SwapIns })
	reg.Counter("kernel.paging.swap_outs", func() uint64 { return k.pagingStats.SwapOuts })
	reg.Counter("kernel.paging.evictions", func() uint64 { return k.pagingStats.Evictions })
}

// SetTracer wires tr through the machine and memory system (see
// machine.SetTracer); kernel maintenance phases emit through it too.
func (k *Kernel) SetTracer(tr *telemetry.Tracer) { k.M.SetTracer(tr) }

// Segments returns the number of live segments.
func (k *Kernel) Segments() int { return len(k.segments) }

// NewDomain mints a fresh protection-domain identifier.
func (k *Kernel) NewDomain() int {
	k.nextDomain++
	return k.nextDomain
}

// AllocSegment reserves a fresh power-of-two segment of at least size
// bytes, maps and zeroes its pages, and returns a read/write pointer to
// its base. This is the privileged pointer-minting path: the returned
// word is the only way the segment's bytes can ever be named.
func (k *Kernel) AllocSegment(size uint64) (core.Pointer, error) {
	base, logLen, err := k.VAS.AllocBytes(size)
	if err != nil {
		return core.Pointer{}, err
	}
	if err := k.M.Space.EnsureMapped(base, uint64(1)<<logLen); err != nil {
		k.VAS.Free(base)
		return core.Pointer{}, err
	}
	p, err := core.Make(core.PermReadWrite, logLen, base)
	if err != nil {
		k.VAS.Free(base)
		return core.Pointer{}, err
	}
	k.segments[base] = logLen
	for _, pg := range pagesOf(base, uint64(1)<<logLen) {
		k.pageRefs[pg]++
	}
	k.stats.SegmentsAllocated++
	return p, nil
}

// pagesOf lists the base addresses of the pages overlapping
// [base, base+size).
func pagesOf(base, size uint64) []uint64 {
	if size == 0 {
		return nil
	}
	var pages []uint64
	first := base &^ uint64(vm.PageMask)
	last := (base + size - 1) &^ uint64(vm.PageMask)
	for pg := first; ; pg += vm.PageSize {
		pages = append(pages, pg)
		if pg == last {
			break
		}
	}
	return pages
}

// findSegment locates the registered segment containing addr. A
// SUBSEG-narrowed or LEA-advanced pointer still resolves to its true
// allocation.
func (k *Kernel) findSegment(addr uint64) (base uint64, logLen uint, ok bool) {
	for b, ll := range k.segments {
		if addr >= b && addr < b+1<<ll {
			return b, ll, true
		}
	}
	return 0, 0, false
}

// FreeSegment releases the segment designated by p (any pointer into
// the segment will do). Its words are zeroed so no stale capabilities
// leak, and each of its pages is unmapped once no other live segment
// shares it — segments smaller than a page can share pages, which is
// the page-granularity caveat of Sec 4.3.
func (k *Kernel) FreeSegment(p core.Pointer) error {
	base, logLen, ok := k.findSegment(p.Addr())
	if !ok {
		return fmt.Errorf("kernel: free of unknown segment %#x", p.Base())
	}
	size := uint64(1) << logLen
	if !k.revoked[base] {
		if err := k.M.Space.ZeroWords(base, base+size); err != nil {
			return err
		}
	}
	k.M.Cache.InvalidateRange(base, size)
	for _, pg := range pagesOf(base, size) {
		k.pageRefs[pg]--
		if k.pageRefs[pg] > 0 {
			continue
		}
		delete(k.pageRefs, pg)
		k.M.Space.DropSwapped(pg)
		if _, err := k.M.Space.UnmapRange(pg, vm.PageSize); err != nil {
			return err
		}
	}
	if err := k.VAS.Free(base); err != nil {
		return err
	}
	delete(k.segments, base)
	delete(k.revoked, base)
	k.stats.SegmentsFreed++
	return nil
}

// WriteWords copies words into the address space starting at p's
// address (which must have store permission covering the span).
func (k *Kernel) WriteWords(p core.Pointer, ws []word.Word) error {
	span := uint64(len(ws)) * word.BytesPerWord
	if p.Offset()+span > p.SegSize() {
		return fmt.Errorf("kernel: %d words exceed segment %v", len(ws), p)
	}
	for i, w := range ws {
		if err := k.M.Space.WriteWord(p.Addr()+uint64(i)*word.BytesPerWord, w); err != nil {
			return err
		}
	}
	return nil
}

// ReadWord reads one word at p's address.
func (k *Kernel) ReadWord(p core.Pointer) (word.Word, error) {
	return k.M.Space.ReadWord(p.Addr())
}

// LoadProgram allocates a code segment, writes the assembled image into
// it, and returns an execute pointer (privileged if priv) to its base.
func (k *Kernel) LoadProgram(p *asm.Program, priv bool) (core.Pointer, error) {
	seg, err := k.AllocSegment(p.ByteSize())
	if err != nil {
		return core.Pointer{}, err
	}
	if err := k.WriteWords(seg, p.Words); err != nil {
		return core.Pointer{}, err
	}
	perm := core.PermExecuteUser
	if priv {
		perm = core.PermExecutePriv
	}
	return core.Make(perm, seg.LogLen(), seg.Base())
}

// Spawn creates a hardware thread in the given domain, starting at the
// entry pointer (execute or enter). regs preloads argument registers.
func (k *Kernel) Spawn(domain int, entry core.Pointer, regs map[int]word.Word) (*machine.Thread, error) {
	t, err := k.M.AddThread(domain)
	if err != nil {
		return nil, err
	}
	if err := t.SetIP(entry); err != nil {
		k.M.RemoveThread(t)
		return nil, err
	}
	for r, w := range regs {
		t.SetReg(r, w)
	}
	return t, nil
}

// RegisterService installs a kernel trap service and returns its code
// (≥ TrapServiceBase).
func (k *Kernel) RegisterService(s Service) int64 {
	code := TrapServiceBase + int64(len(k.services))
	k.services[code] = s
	return code
}

// handleTrap is the machine's trap vector.
func (k *Kernel) handleTrap(m *machine.Machine, t *machine.Thread, code int64) error {
	switch code {
	case TrapAllocSegment:
		size := uint64(t.Reg(1).Int())
		p, err := k.AllocSegment(size)
		if err != nil {
			return err
		}
		t.SetReg(1, p.Word())
		return nil
	case TrapFreeSegment:
		p, err := core.Decode(t.Reg(1))
		if err != nil {
			return err
		}
		return k.FreeSegment(p)
	case TrapCallGate:
		return k.callGate(t)
	default:
		if s, ok := k.services[code]; ok {
			return s(k, t)
		}
		return fmt.Errorf("kernel: unknown trap code %d", code)
	}
}

// Run drives the machine until all threads finish or maxCycles pass.
func (k *Kernel) Run(maxCycles uint64) uint64 { return k.M.Run(maxCycles) }

// SegmentAt locates the registered segment containing addr, reporting
// its geometry and whether it has been revoked. Multi-node maintenance
// (machine-wide GC) uses it to resolve foreign capabilities.
func (k *Kernel) SegmentAt(addr uint64) (base uint64, logLen uint, revoked, ok bool) {
	base, logLen, ok = k.findSegment(addr)
	if !ok {
		return 0, 0, false, false
	}
	return base, logLen, k.revoked[base], true
}

// SegmentBases returns the base address of every live segment.
func (k *Kernel) SegmentBases() []uint64 {
	out := make([]uint64, 0, len(k.segments))
	for b := range k.segments {
		out = append(out, b)
	}
	return out
}
