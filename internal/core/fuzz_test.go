package core

import (
	"testing"

	"repro/internal/word"
)

// requireFault asserts err is nil or a typed guarded-pointer fault with
// a valid code — the only two legal outcomes of any pointer operation.
func requireFault(t *testing.T, op string, err error) {
	t.Helper()
	if err != nil && CodeOf(err) == FaultNone {
		t.Fatalf("%s: untyped error %v (want *core.Fault)", op, err)
	}
}

// FuzzPointerOps: every derivation and check on an arbitrary word must
// either succeed or return a typed fault — never panic, never an
// untyped error. This is the anti-forgery surface: the fuzzer plays the
// adversary minting words out of thin air.
func FuzzPointerOps(f *testing.F) {
	mk := func(p Perm, logLen uint, addr uint64) uint64 {
		ptr, err := Make(p, logLen, addr)
		if err != nil {
			f.Fatal(err)
		}
		return ptr.Word().Bits
	}
	f.Add(uint64(0), false, int64(0), uint8(0), uint8(0))
	f.Add(mk(PermReadWrite, 12, 0x4000), true, int64(8), uint8(PermReadOnly), uint8(10))
	f.Add(mk(PermExecuteUser, 10, 0x1000), true, int64(-8), uint8(PermEnterUser), uint8(4))
	f.Add(^uint64(0), true, int64(1<<40), uint8(0xff), uint8(0xff))
	f.Add(uint64(0xf)<<60, true, int64(1), uint8(3), uint8(54))

	f.Fuzz(func(t *testing.T, bits uint64, tag bool, off int64, permB, lenB uint8) {
		w := word.Word{Bits: bits, Tag: tag}
		p, err := Decode(w)
		requireFault(t, "Decode", err)
		if err == nil {
			if _, err := LEA(p, off); err != nil {
				requireFault(t, "LEA", err)
			}
			if _, err := LEAB(p, off); err != nil {
				requireFault(t, "LEAB", err)
			}
			if _, err := Restrict(p, Perm(permB)); err != nil {
				requireFault(t, "Restrict", err)
			}
			if _, err := SubSeg(p, uint(lenB)); err != nil {
				requireFault(t, "SubSeg", err)
			}
			if _, err := JumpTarget(p); err != nil {
				requireFault(t, "JumpTarget", err)
			}
		}
		if _, err := CheckLoad(w, 8); err != nil {
			requireFault(t, "CheckLoad", err)
		}
		if _, err := CheckStore(w, 8); err != nil {
			requireFault(t, "CheckStore", err)
		}
		if _, err := SetPtr(w, true); err != nil {
			requireFault(t, "SetPtr", err)
		}
	})
}
