package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/word"
)

func TestMakeFieldsRoundTrip(t *testing.T) {
	for perm := PermKey; perm < NumPerms; perm++ {
		for _, logLen := range []uint{0, 1, 3, 12, 32, 53, 54} {
			addr := uint64(0x2a5a5a5a5a5a5) & AddrMask
			p, err := Make(perm, logLen, addr)
			if err != nil {
				t.Fatalf("Make(%v, %d, %#x): %v", perm, logLen, addr, err)
			}
			if p.Perm() != perm {
				t.Errorf("Perm = %v, want %v", p.Perm(), perm)
			}
			if p.LogLen() != logLen {
				t.Errorf("LogLen = %d, want %d", p.LogLen(), logLen)
			}
			if p.Addr() != addr {
				t.Errorf("Addr = %#x, want %#x", p.Addr(), addr)
			}
		}
	}
}

func TestMakeRejectsBadFields(t *testing.T) {
	if _, err := Make(PermNone, 4, 0); CodeOf(err) != FaultPerm {
		t.Errorf("PermNone: err = %v, want perm fault", err)
	}
	if _, err := Make(Perm(12), 4, 0); CodeOf(err) != FaultPerm {
		t.Errorf("reserved perm: err = %v, want perm fault", err)
	}
	if _, err := Make(PermReadOnly, 55, 0); CodeOf(err) != FaultLength {
		t.Errorf("log len 55: err = %v, want length fault", err)
	}
	if _, err := Make(PermReadOnly, 4, 1<<54); CodeOf(err) != FaultBounds {
		t.Errorf("addr 2^54: err = %v, want bounds fault", err)
	}
}

func TestDecodeRequiresTag(t *testing.T) {
	p := mustMake(PermReadWrite, 10, 0x1000)
	if _, err := Decode(p.Word()); err != nil {
		t.Fatalf("Decode of valid pointer word: %v", err)
	}
	if _, err := Decode(p.Word().Untag()); CodeOf(err) != FaultTag {
		t.Errorf("Decode of untagged word: err = %v, want tag fault", err)
	}
}

func TestDecodeRejectsReservedPerm(t *testing.T) {
	// Forge a tagged word with permission encoding 9 (reserved).
	w := word.Tagged(uint64(9)<<permShift | 0x100)
	if _, err := Decode(w); CodeOf(err) != FaultPerm {
		t.Errorf("err = %v, want perm fault", err)
	}
}

func TestDecodeRejectsOverlongSegment(t *testing.T) {
	w := word.Tagged(uint64(PermReadOnly)<<permShift | uint64(60)<<lenShift)
	if _, err := Decode(w); CodeOf(err) != FaultLength {
		t.Errorf("err = %v, want length fault", err)
	}
}

func TestWordRoundTrip(t *testing.T) {
	f := func(permRaw uint8, logLen uint8, addr uint64) bool {
		perm := Perm(permRaw%7 + 1)
		p, err := Make(perm, uint(logLen)%55, addr&AddrMask)
		if err != nil {
			return false
		}
		q, err := Decode(p.Word())
		return err == nil && q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBaseOffsetReconstructAddr(t *testing.T) {
	f := func(logLen uint8, addr uint64) bool {
		p := mustMake(PermReadWrite, uint(logLen)%55, addr&AddrMask)
		return p.Base()+p.Offset() == p.Addr() &&
			p.Base()&(p.SegSize()-1) == 0 && // base aligned on length
			p.Offset() < p.SegSize()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	p := mustMake(PermReadOnly, 12, 0x5000) // segment [0x5000, 0x6000)
	for _, a := range []uint64{0x5000, 0x5fff, 0x5800} {
		if !p.Contains(a) {
			t.Errorf("Contains(%#x) = false, want true", a)
		}
	}
	for _, a := range []uint64{0x4fff, 0x6000, 0} {
		if p.Contains(a) {
			t.Errorf("Contains(%#x) = true, want false", a)
		}
	}
}

func TestContainsFullSpaceSegment(t *testing.T) {
	p := mustMake(PermReadWrite, 54, 0)
	for _, a := range []uint64{0, 1, AddrMask, 1 << 53} {
		if !p.Contains(a) {
			t.Errorf("full-space segment must contain %#x", a)
		}
	}
}

func TestOverlaps(t *testing.T) {
	outer := mustMake(PermReadWrite, 16, 0x10000) // [0x10000,0x20000)
	inner := mustMake(PermReadOnly, 8, 0x10100)   // [0x10100,0x10200)
	other := mustMake(PermReadOnly, 8, 0x20000)
	if !outer.Overlaps(inner) || !inner.Overlaps(outer) {
		t.Error("nested segments must overlap (symmetric)")
	}
	if outer.Overlaps(other) || other.Overlaps(outer) {
		t.Error("disjoint segments must not overlap")
	}
	if !outer.Overlaps(outer) {
		t.Error("segment overlaps itself")
	}
}

func TestLimitWrap(t *testing.T) {
	p := mustMake(PermReadOnly, 54, 123)
	if p.Limit() != 0 {
		t.Errorf("full-space Limit = %#x, want 0 (wraps)", p.Limit())
	}
	q := mustMake(PermReadOnly, 3, 0x10)
	if q.Limit() != 0x18 {
		t.Errorf("Limit = %#x, want 0x18", q.Limit())
	}
}

func TestIsPointer(t *testing.T) {
	p := mustMake(PermKey, 0, 99)
	if !IsPointer(p.Word()) {
		t.Error("ISPOINTER on pointer = false")
	}
	if IsPointer(word.FromInt(99)) {
		t.Error("ISPOINTER on integer = true")
	}
}

func TestSegmentAlignmentInvariant(t *testing.T) {
	// Segments are aligned on their length: Base mod SegSize == 0, for
	// random addresses and lengths.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		logLen := uint(rng.Intn(55))
		addr := rng.Uint64() & AddrMask
		p := mustMake(PermReadWrite, logLen, addr)
		if p.Base()%p.SegSize() != 0 {
			t.Fatalf("base %#x not aligned to 2^%d", p.Base(), logLen)
		}
		if !p.Contains(p.Addr()) {
			t.Fatalf("segment does not contain its own address")
		}
	}
}

func TestAddressSpaceSize(t *testing.T) {
	// Sec 4.2: 2^54 bytes ≈ 1.8e16.
	if AddressSpaceBytes != 1<<54 {
		t.Fatalf("AddressSpaceBytes = %d", AddressSpaceBytes)
	}
	if float64(AddressSpaceBytes) < 1.7e16 || float64(AddressSpaceBytes) > 1.9e16 {
		t.Errorf("address space %e not ≈1.8e16", float64(AddressSpaceBytes))
	}
}

func TestStringFormats(t *testing.T) {
	p := mustMake(PermEnterUser, 6, 0x1234)
	s := p.String()
	if s == "" {
		t.Error("empty String")
	}
	for _, c := range []FaultCode{FaultTag, FaultPerm, FaultBounds, FaultPriv, FaultLength, FaultImmutable} {
		if c.String() == "" {
			t.Errorf("FaultCode %d has empty name", c)
		}
	}
	if FaultCode(99).String() != "fault(99)" {
		t.Errorf("out-of-range fault code name: %s", FaultCode(99))
	}
}

func TestFaultError(t *testing.T) {
	_, err := Make(PermNone, 0, 0)
	f, ok := err.(*Fault)
	if !ok {
		t.Fatalf("error is %T, want *Fault", err)
	}
	if f.Op != "SETPTR" || f.Code != FaultPerm {
		t.Errorf("fault = %+v", f)
	}
	if f.Error() == "" {
		t.Error("empty Error()")
	}
	bare := &Fault{Code: FaultTag, Op: "X"}
	if bare.Error() != "X: tag fault" {
		t.Errorf("bare fault = %q", bare.Error())
	}
	if CodeOf(nil) != FaultNone {
		t.Error("CodeOf(nil) != FaultNone")
	}
}
