package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/word"
)

func TestLEAInBounds(t *testing.T) {
	p := mustMake(PermReadWrite, 12, 0x5000) // [0x5000,0x6000)
	q, err := LEA(p, 0x800)
	if err != nil {
		t.Fatalf("LEA: %v", err)
	}
	if q.Addr() != 0x5800 {
		t.Errorf("Addr = %#x, want 0x5800", q.Addr())
	}
	if q.Perm() != p.Perm() || q.LogLen() != p.LogLen() {
		t.Error("LEA must preserve permission and length fields")
	}
}

func TestLEANegativeOffset(t *testing.T) {
	p := mustMake(PermReadOnly, 12, 0x5800)
	q, err := LEA(p, -0x400)
	if err != nil {
		t.Fatalf("LEA: %v", err)
	}
	if q.Addr() != 0x5400 {
		t.Errorf("Addr = %#x, want 0x5400", q.Addr())
	}
}

func TestLEAOverflowFaults(t *testing.T) {
	p := mustMake(PermReadWrite, 12, 0x5000)
	if _, err := LEA(p, 0x1000); CodeOf(err) != FaultBounds {
		t.Errorf("overflow: err = %v, want bounds fault", err)
	}
	if _, err := LEA(p, -1); CodeOf(err) != FaultBounds {
		t.Errorf("underflow: err = %v, want bounds fault", err)
	}
	// The address datapath is 54 bits wide: an offset of exactly 2^54
	// wraps to the identity (still in segment, no violation)...
	if q, err := LEA(p, 1<<54); err != nil || q != p {
		t.Errorf("2^54 wrap: got %v, %v; want identity", q, err)
	}
	// ...while 2^54 + 0x1000 wraps to an out-of-segment address and
	// must fault like any other escape.
	if _, err := LEA(p, 1<<54+0x1000); CodeOf(err) != FaultBounds {
		t.Errorf("wrap+escape: err = %v, want bounds fault", err)
	}
}

func TestLEALastByte(t *testing.T) {
	p := mustMake(PermReadWrite, 4, 0x100) // [0x100,0x110)
	if q, err := LEA(p, 15); err != nil || q.Addr() != 0x10f {
		t.Errorf("LEA to last byte: %v %v", q, err)
	}
	if _, err := LEA(p, 16); CodeOf(err) != FaultBounds {
		t.Errorf("LEA one past end must bounds-fault, got %v", err)
	}
}

func TestLEAImmutablePerms(t *testing.T) {
	for _, perm := range []Perm{PermKey, PermEnterUser, PermEnterPriv} {
		p := mustMake(perm, 12, 0x5000)
		if _, err := LEA(p, 0); CodeOf(err) != FaultImmutable {
			t.Errorf("LEA on %v: err = %v, want immutable fault", perm, err)
		}
		if _, err := LEAB(p, 0); CodeOf(err) != FaultImmutable {
			t.Errorf("LEAB on %v: err = %v, want immutable fault", perm, err)
		}
	}
}

func TestLEAFullSpaceSegmentNeverFaults(t *testing.T) {
	p := mustMake(PermReadWrite, 54, 0x42)
	f := func(off int64) bool {
		q, err := LEA(p, off)
		return err == nil && q.Addr() == (0x42+uint64(off))&AddrMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLEAB(t *testing.T) {
	p := mustMake(PermReadWrite, 12, 0x5abc) // base 0x5000
	q, err := LEAB(p, 0x10)
	if err != nil {
		t.Fatalf("LEAB: %v", err)
	}
	if q.Addr() != 0x5010 {
		t.Errorf("Addr = %#x, want 0x5010", q.Addr())
	}
	if _, err := LEAB(p, 0x1000); CodeOf(err) != FaultBounds {
		t.Errorf("LEAB past end: err = %v, want bounds fault", err)
	}
	if _, err := LEAB(p, -1); CodeOf(err) != FaultBounds {
		t.Errorf("LEAB below base: err = %v, want bounds fault", err)
	}
}

// Property: any sequence of successful LEA operations stays inside the
// original segment — the central containment invariant of the paper.
func TestLEAClosureProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		logLen := uint(rng.Intn(20))
		base := (rng.Uint64() & AddrMask) &^ (1<<logLen - 1)
		p := mustMake(PermReadWrite, logLen, base+rng.Uint64()%(1<<logLen))
		orig := p
		for step := 0; step < 50; step++ {
			off := rng.Int63n(1<<(logLen+2)) - 1<<(logLen+1)
			q, err := LEA(p, off)
			if err != nil {
				continue // faulting derivations produce nothing
			}
			p = q
			if !orig.Contains(p.Addr()) {
				t.Fatalf("LEA escaped segment: %v from %v", p, orig)
			}
			if p.Base() != orig.Base() || p.LogLen() != orig.LogLen() {
				t.Fatalf("LEA changed segment identity: %v from %v", p, orig)
			}
		}
	}
}

func TestRestrictLattice(t *testing.T) {
	cases := []struct {
		from, to Perm
		ok       bool
	}{
		{PermReadWrite, PermReadOnly, true},
		{PermReadWrite, PermKey, true},
		{PermReadOnly, PermKey, true},
		{PermExecutePriv, PermExecuteUser, true},
		{PermExecutePriv, PermEnterPriv, true},
		{PermExecutePriv, PermEnterUser, true},
		{PermExecutePriv, PermReadOnly, true},
		{PermExecuteUser, PermEnterUser, true},
		{PermExecuteUser, PermReadOnly, true},
		{PermExecuteUser, PermKey, true},

		{PermReadOnly, PermReadWrite, false}, // amplification
		{PermReadOnly, PermReadOnly, false},  // not strict
		{PermReadWrite, PermReadWrite, false},
		{PermReadOnly, PermExecuteUser, false},
		{PermExecuteUser, PermExecutePriv, false},
		{PermExecuteUser, PermEnterPriv, false},
		{PermReadWrite, PermEnterUser, false},
	}
	for _, c := range cases {
		p := mustMake(c.from, 12, 0x3000)
		q, err := Restrict(p, c.to)
		if c.ok {
			if err != nil {
				t.Errorf("Restrict(%v→%v): %v", c.from, c.to, err)
				continue
			}
			if q.Perm() != c.to || q.Addr() != p.Addr() || q.LogLen() != p.LogLen() {
				t.Errorf("Restrict(%v→%v) produced %v", c.from, c.to, q)
			}
		} else if CodeOf(err) != FaultPerm {
			t.Errorf("Restrict(%v→%v): err = %v, want perm fault", c.from, c.to, err)
		}
	}
}

func TestRestrictOnImmutable(t *testing.T) {
	for _, perm := range []Perm{PermKey, PermEnterUser, PermEnterPriv} {
		p := mustMake(perm, 12, 0x3000)
		if _, err := Restrict(p, PermKey); CodeOf(err) != FaultImmutable {
			t.Errorf("Restrict on %v: err = %v, want immutable fault", perm, err)
		}
	}
}

// Property: RESTRICT never amplifies — whatever the resulting
// permission, it cannot do anything the source could not.
func TestRestrictMonotoneProperty(t *testing.T) {
	for from := PermKey; from < NumPerms; from++ {
		for to := PermKey; to < NumPerms; to++ {
			p := mustMake(from, 10, 0x800)
			q, err := Restrict(p, to)
			if err != nil {
				continue
			}
			if q.Perm().CanStore() && !from.CanStore() {
				t.Errorf("%v→%v amplified store", from, to)
			}
			if q.Perm().CanLoad() && !from.CanLoad() {
				t.Errorf("%v→%v amplified load", from, to)
			}
			if q.Perm().Privileged() && !from.Privileged() {
				t.Errorf("%v→%v amplified privilege", from, to)
			}
		}
	}
}

func TestSubSeg(t *testing.T) {
	p := mustMake(PermReadWrite, 12, 0x5abc)
	q, err := SubSeg(p, 8)
	if err != nil {
		t.Fatalf("SubSeg: %v", err)
	}
	if q.LogLen() != 8 || q.Addr() != p.Addr() {
		t.Errorf("SubSeg produced %v", q)
	}
	// New segment is the aligned 2^8 block containing the address.
	if q.Base() != 0x5a00 {
		t.Errorf("new base = %#x, want 0x5a00", q.Base())
	}
	if _, err := SubSeg(p, 12); CodeOf(err) != FaultLength {
		t.Errorf("SubSeg equal length: err = %v, want length fault", err)
	}
	if _, err := SubSeg(p, 13); CodeOf(err) != FaultLength {
		t.Errorf("SubSeg larger: err = %v, want length fault", err)
	}
}

func TestSubSegImmutable(t *testing.T) {
	p := mustMake(PermEnterUser, 12, 0x5000)
	if _, err := SubSeg(p, 4); CodeOf(err) != FaultImmutable {
		t.Errorf("err = %v, want immutable fault", err)
	}
}

// Property: SubSeg shrinks the segment and the result is always nested
// inside the original.
func TestSubSegNestingProperty(t *testing.T) {
	f := func(logLen, sub uint8, addr uint64) bool {
		ll := uint(logLen)%54 + 1 // 1..54
		s := uint(sub) % ll       // 0..ll-1
		p := mustMake(PermReadWrite, ll, addr&AddrMask)
		q, err := SubSeg(p, s)
		if err != nil {
			return false
		}
		return p.Contains(q.Base()) && p.Contains(q.Base()+q.SegSize()-1) &&
			q.SegSize() < p.SegSize()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetPtrPrivilege(t *testing.T) {
	image := mustMake(PermReadWrite, 12, 0x9000).Word().Untag()
	if _, err := SetPtr(image, false); CodeOf(err) != FaultPriv {
		t.Errorf("user SETPTR: err = %v, want priv fault", err)
	}
	p, err := SetPtr(image, true)
	if err != nil {
		t.Fatalf("priv SETPTR: %v", err)
	}
	if p.Perm() != PermReadWrite || p.Addr() != 0x9000 {
		t.Errorf("SETPTR produced %v", p)
	}
	// Even privileged SETPTR cannot make a structurally invalid pointer.
	if _, err := SetPtr(word.FromUint(uint64(60)<<lenShift|uint64(PermReadOnly)<<permShift), true); CodeOf(err) != FaultLength {
		t.Errorf("SETPTR bad length: err = %v, want length fault", err)
	}
}

func TestEnterToExecute(t *testing.T) {
	eu := mustMake(PermEnterUser, 10, 0x400)
	x, err := EnterToExecute(eu)
	if err != nil {
		t.Fatalf("EnterToExecute: %v", err)
	}
	if x.Perm() != PermExecuteUser || x.Addr() != eu.Addr() || x.LogLen() != eu.LogLen() {
		t.Errorf("converted to %v", x)
	}
	ep := mustMake(PermEnterPriv, 10, 0x400)
	if x, _ := EnterToExecute(ep); x.Perm() != PermExecutePriv {
		t.Errorf("enter-priv converted to %v", x.Perm())
	}
	if _, err := EnterToExecute(mustMake(PermReadOnly, 10, 0x400)); CodeOf(err) != FaultPerm {
		t.Errorf("non-enter: err = %v, want perm fault", err)
	}
}

func TestJumpTarget(t *testing.T) {
	exec := mustMake(PermExecuteUser, 10, 0x400)
	if ip, err := JumpTarget(exec); err != nil || ip != exec {
		t.Errorf("jump to execute: %v %v", ip, err)
	}
	enter := mustMake(PermEnterPriv, 10, 0x400)
	ip, err := JumpTarget(enter)
	if err != nil || ip.Perm() != PermExecutePriv {
		t.Errorf("jump to enter-priv: %v %v", ip, err)
	}
	if _, err := JumpTarget(mustMake(PermReadWrite, 10, 0x400)); CodeOf(err) != FaultPerm {
		t.Errorf("jump to data pointer: err = %v, want perm fault", err)
	}
	if _, err := JumpTarget(mustMake(PermKey, 10, 0x400)); CodeOf(err) != FaultPerm {
		t.Errorf("jump to key: err = %v, want perm fault", err)
	}
}

func TestCheckLoadStore(t *testing.T) {
	rw := mustMake(PermReadWrite, 6, 0x40) // 64-byte segment
	if _, err := CheckLoad(rw.Word(), 8); err != nil {
		t.Errorf("load via rw: %v", err)
	}
	if _, err := CheckStore(rw.Word(), 8); err != nil {
		t.Errorf("store via rw: %v", err)
	}
	ro := mustMake(PermReadOnly, 6, 0x40)
	if _, err := CheckLoad(ro.Word(), 8); err != nil {
		t.Errorf("load via ro: %v", err)
	}
	if _, err := CheckStore(ro.Word(), 8); CodeOf(err) != FaultPerm {
		t.Errorf("store via ro: err = %v, want perm fault", err)
	}
	exec := mustMake(PermExecuteUser, 6, 0x40)
	if _, err := CheckLoad(exec.Word(), 8); err != nil {
		t.Errorf("load via execute (execute is read-only): %v", err)
	}
	for _, perm := range []Perm{PermKey, PermEnterUser, PermEnterPriv} {
		p := mustMake(perm, 6, 0x40)
		if _, err := CheckLoad(p.Word(), 8); CodeOf(err) != FaultPerm {
			t.Errorf("load via %v: err = %v, want perm fault", perm, err)
		}
	}
	if _, err := CheckLoad(word.FromInt(0x40), 8); CodeOf(err) != FaultTag {
		t.Errorf("load via integer: err = %v, want tag fault", err)
	}
}

func TestCheckSpanStraddle(t *testing.T) {
	p := mustMake(PermReadWrite, 4, 0x10a) // [0x100,0x110), offset 0xa
	if _, err := CheckLoad(p.Word(), 6); err != nil {
		t.Errorf("6 bytes at offset 10 of 16: %v", err)
	}
	if _, err := CheckLoad(p.Word(), 7); CodeOf(err) != FaultBounds {
		t.Errorf("7 bytes at offset 10 of 16: err = %v, want bounds fault", err)
	}
	if _, err := CheckLoad(p.Word(), 0); err != nil {
		t.Errorf("zero-size access: %v", err)
	}
}

func TestPtrIntCasts(t *testing.T) {
	seg := mustMake(PermReadWrite, 12, 0x5000)
	p, _ := LEA(seg, 0x123)
	off, err := PtrToInt(p)
	if err != nil || off != 0x123 {
		t.Errorf("PtrToInt = %d, %v; want 0x123", off, err)
	}
	q, err := IntToPtr(seg, 0x456)
	if err != nil || q.Addr() != 0x5456 {
		t.Errorf("IntToPtr = %v, %v", q, err)
	}
	if _, err := IntToPtr(seg, 0x1000); CodeOf(err) != FaultBounds {
		t.Errorf("IntToPtr overflow: err = %v, want bounds fault", err)
	}
	if _, err := IntToPtr(seg, -1); CodeOf(err) != FaultBounds {
		t.Errorf("IntToPtr negative: err = %v, want bounds fault", err)
	}
	if _, err := PtrToInt(mustMake(PermKey, 12, 0x5000)); CodeOf(err) != FaultImmutable {
		t.Errorf("PtrToInt on key: err = %v, want immutable fault", err)
	}
}

// Property: round-tripping an offset through IntToPtr then PtrToInt is
// the identity for any in-range offset — the paper's C cast sequences
// compose correctly.
func TestCastRoundTripProperty(t *testing.T) {
	seg := mustMake(PermReadWrite, 20, 0x100000)
	f := func(off uint32) bool {
		v := int64(off % (1 << 20))
		p, err := IntToPtr(seg, v)
		if err != nil {
			return false
		}
		back, err := PtrToInt(p)
		return err == nil && back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: user-mode pointer algebra cannot forge a pointer to memory
// outside the segments it starts with. Starting from one pointer, any
// sequence of LEA/LEAB/Restrict/SubSeg yields pointers whose segments
// are contained in the original segment.
func TestNoForgeryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	orig := mustMake(PermReadWrite, 16, 0xabcd0000&uint64(AddrMask))
	held := []Pointer{orig}
	for step := 0; step < 5000; step++ {
		p := held[rng.Intn(len(held))]
		var q Pointer
		var err error
		switch rng.Intn(4) {
		case 0:
			q, err = LEA(p, rng.Int63n(1<<17)-1<<16)
		case 1:
			q, err = LEAB(p, rng.Int63n(1<<17)-1<<16)
		case 2:
			q, err = Restrict(p, Perm(rng.Intn(int(NumPerms))))
		case 3:
			q, err = SubSeg(p, uint(rng.Intn(17)))
		}
		if err != nil {
			continue
		}
		if !orig.Contains(q.Base()) || !orig.Contains(q.Base()+q.SegSize()-1) {
			t.Fatalf("derived pointer %v escapes original segment %v", q, orig)
		}
		held = append(held, q)
		if len(held) > 64 {
			held = held[1:]
		}
	}
}
