package core

import (
	"errors"
	"testing"
)

// TestFaultCodeStringsExhaustive pins the exact name of every declared
// fault code: the telemetry layer exports codes numerically and uses
// these strings as the human-readable legend, so a rename or reorder
// here must be a deliberate, test-visible act.
func TestFaultCodeStringsExhaustive(t *testing.T) {
	want := map[FaultCode]string{
		FaultNone:      "none",
		FaultTag:       "tag",
		FaultPerm:      "permission",
		FaultBounds:    "bounds",
		FaultPriv:      "privilege",
		FaultLength:    "length",
		FaultImmutable: "immutable",
	}
	// Every declared code must be covered: the names table and this map
	// must agree in size, so adding a code without updating both fails.
	if len(want) != len(faultNames) {
		t.Fatalf("test covers %d codes, declaration has %d", len(want), len(faultNames))
	}
	for code, name := range want {
		if got := code.String(); got != name {
			t.Errorf("FaultCode(%d).String() = %q, want %q", uint8(code), got, name)
		}
	}
	if got := FaultCode(200).String(); got != "fault(200)" {
		t.Errorf("out-of-range code renders %q", got)
	}
}

func TestFaultErrorAndCodeOf(t *testing.T) {
	f := &Fault{Code: FaultPerm, Op: "ST", Msg: "read-only pointer"}
	if f.Error() != "ST: permission fault: read-only pointer" {
		t.Errorf("Error() = %q", f.Error())
	}
	bare := &Fault{Code: FaultTag, Op: "LD"}
	if bare.Error() != "LD: tag fault" {
		t.Errorf("Error() without message = %q", bare.Error())
	}
	if CodeOf(f) != FaultPerm || CodeOf(nil) != FaultNone {
		t.Error("CodeOf on fault / nil")
	}
	if CodeOf(errors.New("unrelated")) != FaultNone {
		t.Error("CodeOf on foreign error")
	}
}
