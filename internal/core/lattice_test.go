package core

import (
	"math/rand"
	"testing"
)

// The RESTRICT permission relation must be a strict partial order:
// irreflexive, antisymmetric, transitive. These are the algebraic
// guarantees behind "a user process can only restrict access".

func TestStrictSubsetIrreflexive(t *testing.T) {
	for p := PermKey; p < NumPerms; p++ {
		if StrictSubset(p, p) {
			t.Errorf("%v ⊂ %v", p, p)
		}
	}
}

func TestStrictSubsetAntisymmetric(t *testing.T) {
	for a := PermKey; a < NumPerms; a++ {
		for b := PermKey; b < NumPerms; b++ {
			if StrictSubset(a, b) && StrictSubset(b, a) {
				t.Errorf("both %v ⊂ %v and %v ⊂ %v", a, b, b, a)
			}
		}
	}
}

func TestStrictSubsetTransitive(t *testing.T) {
	for a := PermKey; a < NumPerms; a++ {
		for b := PermKey; b < NumPerms; b++ {
			for c := PermKey; c < NumPerms; c++ {
				if StrictSubset(a, b) && StrictSubset(b, c) && !StrictSubset(a, c) {
					t.Errorf("%v ⊂ %v ⊂ %v but not %v ⊂ %v", a, b, c, a, c)
				}
			}
		}
	}
}

// Restrict transitivity at the operation level: any permission
// reachable in two RESTRICT steps is reachable in one.
func TestRestrictPathIndependence(t *testing.T) {
	base := mustMake(PermExecutePriv, 12, 0x7000)
	for mid := PermKey; mid < NumPerms; mid++ {
		m, err := Restrict(base, mid)
		if err != nil {
			continue
		}
		for to := PermKey; to < NumPerms; to++ {
			two, err2 := Restrict(m, to)
			if err2 != nil {
				continue
			}
			one, err1 := Restrict(base, to)
			if err1 != nil {
				t.Errorf("reachable via %v→%v→%v but not directly", base.Perm(), mid, to)
				continue
			}
			if one != two {
				t.Errorf("path dependence: %v vs %v", one, two)
			}
		}
	}
}

// LEA composes additively: LEA(LEA(p,a),b) == LEA(p,a+b) whenever all
// three succeed.
func TestLEAComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := mustMake(PermReadWrite, 16, 0xab0000)
	for i := 0; i < 3000; i++ {
		a := rng.Int63n(1<<17) - 1<<16
		b := rng.Int63n(1<<17) - 1<<16
		q1, err1 := LEA(p, a)
		if err1 != nil {
			continue
		}
		q2, err2 := LEA(q1, b)
		direct, errD := LEA(p, a+b)
		if err2 == nil && errD == nil && q2 != direct {
			t.Fatalf("LEA(%d)+LEA(%d) = %v, LEA(%d) = %v", a, b, q2, a+b, direct)
		}
		if err2 == nil && errD != nil {
			t.Fatalf("stepwise LEA reached %v but direct LEA(%d) faults", q2, a+b)
		}
	}
}

// SubSeg composes: narrowing twice equals narrowing once to the final
// length (the address is preserved throughout).
func TestSubSegComposition(t *testing.T) {
	p := mustMake(PermReadWrite, 20, 0x12345678&uint64(AddrMask))
	for k2 := uint(1); k2 < 20; k2++ {
		mid, err := SubSeg(p, k2)
		if err != nil {
			t.Fatal(err)
		}
		for k1 := uint(0); k1 < k2; k1++ {
			two, err := SubSeg(mid, k1)
			if err != nil {
				t.Fatal(err)
			}
			one, err := SubSeg(p, k1)
			if err != nil {
				t.Fatal(err)
			}
			if one != two {
				t.Fatalf("SubSeg path dependence at %d,%d", k2, k1)
			}
		}
	}
}

// Word round trips are idempotent: Decode(p.Word()).Word() == p.Word().
func TestWordRoundTripIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		p := mustMake(Perm(rng.Intn(7)+1), uint(rng.Intn(55)), rng.Uint64()&AddrMask)
		q, err := Decode(p.Word())
		if err != nil {
			t.Fatal(err)
		}
		if q.Word() != p.Word() {
			t.Fatalf("round trip changed bits: %v vs %v", q.Word(), p.Word())
		}
	}
}

// Derivation never changes which segment a pointer names: Base and
// LogLen are invariant under LEA/LEAB, and permissions are invariant
// under LEA/LEAB/SubSeg.
func TestDerivationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		p := mustMake(PermReadWrite, uint(rng.Intn(20)+3), rng.Uint64()&AddrMask)
		if q, err := LEA(p, rng.Int63n(1<<20)-1<<19); err == nil {
			if q.Base() != p.Base() || q.LogLen() != p.LogLen() || q.Perm() != p.Perm() {
				t.Fatalf("LEA changed segment identity: %v → %v", p, q)
			}
		}
		if q, err := LEAB(p, rng.Int63n(1<<20)); err == nil {
			if q.Base() != p.Base() || q.Perm() != p.Perm() {
				t.Fatalf("LEAB changed segment: %v → %v", p, q)
			}
		}
		if q, err := SubSeg(p, uint(rng.Intn(int(p.LogLen())))); err == nil {
			if q.Perm() != p.Perm() || q.Addr() != p.Addr() {
				t.Fatalf("SubSeg changed perm/addr: %v → %v", p, q)
			}
		}
	}
}
