package core

import "repro/internal/word"

// This file provides the unchecked counterparts of the pointer
// operations in ops.go, for callers that hold a static proof the checks
// pass — the check-eliding superblock translator (internal/jit), acting
// on capverify's provably-safe verdicts. Each function computes exactly
// the value its checked counterpart would return when no fault is
// raised; using one without such a proof forges capabilities.

// UncheckedAdvance moves p by off bytes with no immutability or bounds
// check: the elided form of LEA(p, off) and of the sequential
// instruction-pointer advance. The address wraps in 54-bit arithmetic,
// matching the checked adder.
func UncheckedAdvance(p Pointer, off int64) Pointer {
	return p.withAddr(p.Addr() + uint64(off))
}

// UncheckedLEA is the elided form of LEA on a register word: add off to
// the address field, preserving tag, permission, and length. The low 54
// bits of w.Bits+off equal the checked (Addr+off) mod 2^54, so the
// result is bit-identical to the checked path's when that path does not
// fault.
func UncheckedLEA(w word.Word, off int64) word.Word {
	return word.Tagged(w.Bits&^AddrMask | (w.Bits+uint64(off))&AddrMask)
}

// UncheckedLEAB is the elided form of LEAB on a register word: add off
// to the segment *base* instead of the current address.
func UncheckedLEAB(w word.Word, off int64) word.Word {
	p := Pointer{bits: w.Bits}
	return word.Tagged(w.Bits&^AddrMask | (p.Base()+uint64(off))&AddrMask)
}
