package core

// mustMake is the test-local stand-in for the removed library MustMake:
// production code must handle Make's error; statically correct test
// fixtures may panic.
func mustMake(p Perm, logLen uint, addr uint64) Pointer {
	ptr, err := Make(p, logLen, addr)
	if err != nil {
		panic(err)
	}
	return ptr
}
