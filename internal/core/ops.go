package core

import "repro/internal/word"

// This file implements the pointer-manipulation operations of Sec 2.2.
// Each models one instruction of the guarded-pointer architecture; all
// run entirely in user mode except SetPtr.

// LEA implements the load-effective-address instruction: it adds an
// integer byte offset to a data or execute pointer and returns the new
// pointer, raising a bounds fault if the result leaves the source
// pointer's segment. The bounds check is Fig. 2's masked comparator: the
// fixed (segment) portion of the address must be identical before and
// after the add.
func LEA(p Pointer, off int64) (Pointer, error) {
	if !p.Perm().Modifiable() {
		return Pointer{}, faultf(FaultImmutable, "LEA", "%s pointer may not be modified", p.Perm())
	}
	newAddr := (p.Addr() + uint64(off)) & AddrMask
	if (p.Addr()^newAddr)&^p.offsetMask() != 0 {
		return Pointer{}, faultf(FaultBounds, "LEA",
			"%s + %d leaves segment [%#x,+2^%d)", p, off, p.Base(), p.LogLen())
	}
	return p.withAddr(newAddr), nil
}

// LEAB implements the load-effective-address-from-base instruction: it
// adds an offset to the *base* of the pointer's segment rather than to
// its current address. The paper provides it "for efficiency" and it is
// the primitive from which the pointer↔integer cast sequences are built
// (Sec 2.2, "Pointer Arithmetic").
func LEAB(p Pointer, off int64) (Pointer, error) {
	if !p.Perm().Modifiable() {
		return Pointer{}, faultf(FaultImmutable, "LEAB", "%s pointer may not be modified", p.Perm())
	}
	newAddr := (p.Base() + uint64(off)) & AddrMask
	if (p.Base()^newAddr)&^p.offsetMask() != 0 {
		return Pointer{}, faultf(FaultBounds, "LEAB",
			"base %#x + %d leaves segment of size 2^%d", p.Base(), off, p.LogLen())
	}
	return p.withAddr(newAddr), nil
}

// Restrict implements the RESTRICT instruction: substitute permission t
// into p, legal only when t is a strict subset of p's rights. It lets a
// process grant another process weaker access to a segment it holds —
// "without system software interaction" (Sec 2.2).
func Restrict(p Pointer, t Perm) (Pointer, error) {
	if !p.Perm().Modifiable() {
		return Pointer{}, faultf(FaultImmutable, "RESTRICT", "%s pointer may not be modified", p.Perm())
	}
	if !StrictSubset(t, p.Perm()) {
		return Pointer{}, faultf(FaultPerm, "RESTRICT",
			"%s is not a strict subset of %s", t, p.Perm())
	}
	return Pointer{bits: p.bits&^(uint64(permMask)<<permShift) | uint64(t)<<permShift}, nil
}

// SubSeg implements the SUBSEG instruction: substitute segment-length
// exponent l into p, legal only when l is strictly less than p's current
// length field. The new (smaller, still aligned) segment is the 2^l-byte
// block containing p's current address; the address field is unchanged.
func SubSeg(p Pointer, l uint) (Pointer, error) {
	if !p.Perm().Modifiable() {
		return Pointer{}, faultf(FaultImmutable, "SUBSEG", "%s pointer may not be modified", p.Perm())
	}
	if l >= p.LogLen() {
		return Pointer{}, faultf(FaultLength, "SUBSEG",
			"2^%d is not smaller than current segment 2^%d", l, p.LogLen())
	}
	return Pointer{bits: p.bits&^(uint64(lenMask)<<lenShift) | uint64(l)<<lenShift}, nil
}

// SetPtr implements the privileged SETPTR instruction: convert an
// arbitrary integer word into a guarded pointer by setting the tag bit.
// priv is the supervisor-mode bit of the executing instruction pointer;
// without it the operation raises a privilege fault. The resulting word
// must still decode as a structurally valid pointer.
func SetPtr(w word.Word, priv bool) (Pointer, error) {
	if !priv {
		return Pointer{}, faultf(FaultPriv, "SETPTR", "privileged instruction in user mode")
	}
	return Decode(word.Tagged(w.Bits))
}

// EnterToExecute models what a jump through an enter pointer does in
// hardware: the enter permission is converted to the corresponding
// execute permission as the pointer is installed in the instruction
// pointer (Sec 2.1). Jumping to a non-enter pointer is handled by the
// jump legality check, not here.
func EnterToExecute(p Pointer) (Pointer, error) {
	t, ok := p.Perm().EnterTarget()
	if !ok {
		return Pointer{}, faultf(FaultPerm, "ENTER", "%s is not an enter pointer", p.Perm())
	}
	return Pointer{bits: p.bits&^(uint64(permMask)<<permShift) | uint64(t)<<permShift}, nil
}

// JumpTarget validates p as the target of a jump executed under the
// given privilege and returns the execute pointer to install in the
// instruction pointer. Execute pointers transfer directly; enter
// pointers are converted. Privileged mode is *entered* by jumping to an
// enter-privileged pointer and *exited* by jumping to a user pointer —
// no mode bit exists outside the IP itself.
func JumpTarget(p Pointer) (Pointer, error) {
	switch {
	case p.Perm().CanExecute():
		return p, nil
	case p.Perm().IsEnter():
		return EnterToExecute(p)
	default:
		return Pointer{}, faultf(FaultPerm, "JMP", "%s pointer is not a jump target", p.Perm())
	}
}

// CheckLoad validates w as the address operand of a load of size bytes
// and returns the decoded pointer. All checks complete before the
// access issues; after this the access cannot raise a protection
// violation (TLB misses may still occur, Sec 2.2).
func CheckLoad(w word.Word, size uint64) (Pointer, error) {
	p, err := Decode(w)
	if err != nil {
		return Pointer{}, err
	}
	if !p.Perm().CanLoad() {
		return Pointer{}, faultf(FaultPerm, "LOAD", "%s pointer cannot load", p.Perm())
	}
	if err := checkSpan(p, size, "LOAD"); err != nil {
		return Pointer{}, err
	}
	return p, nil
}

// CheckStore validates w as the address operand of a store of size
// bytes.
func CheckStore(w word.Word, size uint64) (Pointer, error) {
	p, err := Decode(w)
	if err != nil {
		return Pointer{}, err
	}
	if !p.Perm().CanStore() {
		return Pointer{}, faultf(FaultPerm, "STORE", "%s pointer cannot store", p.Perm())
	}
	if err := checkSpan(p, size, "STORE"); err != nil {
		return Pointer{}, err
	}
	return p, nil
}

// checkSpan verifies that size bytes starting at the pointer's address
// stay inside the segment (an access may not straddle the segment end).
func checkSpan(p Pointer, size uint64, op string) error {
	if size == 0 {
		return nil
	}
	if p.Offset()+size > p.SegSize() {
		return faultf(FaultBounds, op,
			"%d-byte access at offset %#x exceeds segment size 2^%d", size, p.Offset(), p.LogLen())
	}
	return nil
}

// PtrToInt implements the pointer-to-integer cast code sequence of
// Sec 2.2 (LEAB to find the base, subtract): it returns the pointer's
// offset within its segment as an integer. No privilege is required.
func PtrToInt(p Pointer) (int64, error) {
	if !p.Perm().Modifiable() {
		return 0, faultf(FaultImmutable, "PTRTOINT", "%s pointer may not be inspected arithmetically", p.Perm())
	}
	base, err := LEAB(p, 0)
	if err != nil {
		return 0, err
	}
	return int64(p.Addr() - base.Addr()), nil
}

// IntToPtr implements the integer-to-pointer cast: given a data-segment
// pointer seg and an integer v, produce a pointer into seg with offset
// v, "as long as the integer fits into the offset field of the data
// segment" (Sec 2.2). It is simply LEAB and requires no privilege.
func IntToPtr(seg Pointer, v int64) (Pointer, error) {
	if v < 0 || uint64(v) >= seg.SegSize() {
		return Pointer{}, faultf(FaultBounds, "INTTOPTR",
			"integer %d does not fit in offset field of 2^%d-byte segment", v, seg.LogLen())
	}
	return LEAB(seg, v)
}
