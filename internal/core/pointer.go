// Package core implements guarded pointers, the primary contribution of
// Carter, Keckler & Dally, "Hardware Support for Fast Capability-based
// Addressing" (ASPLOS 1994).
//
// A guarded pointer is a tagged 64-bit word laid out as in Fig. 1 of the
// paper:
//
//	tag | permission (4 bits) | segment length (6 bits) | address (54 bits)
//
// The segment-length field holds the base-2 logarithm of the segment
// size in bytes; segments are power-of-two sized and aligned on their
// length, so the length field splits the address into a fixed segment
// part and a variable offset part. The whole capability — what may be
// done, to which segment, at which byte — travels inside the pointer, so
// no capability or segment tables exist anywhere in the system and a
// single level of translation suffices.
//
// All functions in this package are pure: they model the combinational
// checking hardware of Sec 2.2 (a permission decoder, an adder, and a
// masked comparator) and either produce a new pointer or a *Fault.
package core

import (
	"fmt"

	"repro/internal/word"
)

// Field geometry of Fig. 1.
const (
	// AddrBits is the width of the virtual address: 64 data bits minus
	// 4 permission bits minus 6 length bits.
	AddrBits = 54

	// LenBits is the width of the segment-length field.
	LenBits = 6

	// PermBits is the width of the permission field.
	PermBits = 4

	// AddrMask selects the 54 address bits of a pointer word.
	AddrMask uint64 = (1 << AddrBits) - 1

	// MaxLogLen is the largest legal segment-length exponent: a single
	// segment spanning the entire 2^54-byte space.
	MaxLogLen = AddrBits

	lenShift  = AddrBits
	permShift = AddrBits + LenBits
	lenMask   = (1 << LenBits) - 1
	permMask  = (1 << PermBits) - 1
)

// AddressSpaceBytes is the size of the single shared virtual address
// space: 2^54 bytes ≈ 1.8 × 10^16 (Sec 4.2).
const AddressSpaceBytes = uint64(1) << AddrBits

// Pointer is a decoded guarded pointer. It is a value type wrapping the
// underlying tagged word; the zero value is not a valid pointer
// (Perm() == PermNone only arises from malformed words, which every
// operation rejects).
type Pointer struct {
	bits uint64 // full 64-bit pointer image (perm|len|addr)
}

// Make constructs a guarded pointer from its fields. This is the model
// of the privileged SETPTR path: no subset or bounds discipline is
// applied, only structural validity (the kernel may "amplify pointer
// permissions and increase segment lengths", Sec 2.2). Non-privileged
// code must derive pointers with LEA/LEAB/Restrict/SubSeg instead.
func Make(p Perm, logLen uint, addr uint64) (Pointer, error) {
	if !p.Valid() {
		return Pointer{}, faultf(FaultPerm, "SETPTR", "invalid permission %d", p)
	}
	if logLen > MaxLogLen {
		return Pointer{}, faultf(FaultLength, "SETPTR", "segment length 2^%d exceeds address space", logLen)
	}
	if addr > AddrMask {
		return Pointer{}, faultf(FaultBounds, "SETPTR", "address %#x exceeds 54 bits", addr)
	}
	return Pointer{bits: uint64(p)<<permShift | uint64(logLen)<<lenShift | addr}, nil
}

// Decode validates that w is a guarded pointer (tag set, permission and
// length fields well formed) and returns its decoded form. This is the
// check every address operand undergoes before a memory operation
// issues.
func Decode(w word.Word) (Pointer, error) {
	if !w.Tag {
		return Pointer{}, faultf(FaultTag, "DECODE", "word %s is not a pointer", w)
	}
	p := Pointer{bits: w.Bits}
	if !p.Perm().Valid() {
		return Pointer{}, faultf(FaultPerm, "DECODE", "reserved permission encoding %d", p.rawPerm())
	}
	if p.LogLen() > MaxLogLen {
		return Pointer{}, faultf(FaultLength, "DECODE", "segment length 2^%d exceeds address space", p.LogLen())
	}
	return p, nil
}

// IsPointer implements the ISPOINTER instruction: it reports the state
// of the tag bit without any other validation (Sec 2.2, "Pointer
// Identification"). Garbage collectors use it to find pointers.
func IsPointer(w word.Word) bool { return w.Tag }

// Word returns the pointer's 65-bit machine representation (64 bits plus
// tag).
func (p Pointer) Word() word.Word { return word.Tagged(p.bits) }

// Perm returns the 4-bit permission field.
func (p Pointer) Perm() Perm { return Perm(p.rawPerm()) }

func (p Pointer) rawPerm() uint8 { return uint8(p.bits >> permShift & permMask) }

// LogLen returns the segment-length field: log2 of the segment size in
// bytes.
func (p Pointer) LogLen() uint { return uint(p.bits >> lenShift & lenMask) }

// Addr returns the 54-bit byte address the pointer currently designates.
func (p Pointer) Addr() uint64 { return p.bits & AddrMask }

// SegSize returns the segment size in bytes.
func (p Pointer) SegSize() uint64 { return 1 << p.LogLen() }

// offsetMask selects the variable offset bits of the address.
func (p Pointer) offsetMask() uint64 { return p.SegSize() - 1 }

// Base returns the segment base: the address with all offset bits
// cleared. "This allows the base of a segment to be determined by
// setting all of the offset bits to zero" (Sec 2).
func (p Pointer) Base() uint64 { return p.Addr() &^ p.offsetMask() }

// Offset returns the pointer's byte offset within its segment.
func (p Pointer) Offset() uint64 { return p.Addr() & p.offsetMask() }

// Limit returns the first byte address past the end of the segment.
// For a full-address-space segment this wraps to 0 in 54-bit arithmetic;
// callers wanting the size should use SegSize.
func (p Pointer) Limit() uint64 { return (p.Base() + p.SegSize()) & AddrMask }

// Contains reports whether byte address a lies inside the pointer's
// segment.
func (p Pointer) Contains(a uint64) bool {
	return a&AddrMask&^p.offsetMask() == p.Base()
}

// Overlaps reports whether the segments of p and q share any byte.
// Because segments are power-of-two sized and aligned, two segments
// overlap exactly when one contains the other's base.
func (p Pointer) Overlaps(q Pointer) bool {
	return p.Contains(q.Base()) || q.Contains(p.Base())
}

// WithAddr returns a copy of p whose address field is a. It performs no
// checking and is unexported machinery for the checked operations in
// ops.go.
func (p Pointer) withAddr(a uint64) Pointer {
	return Pointer{bits: p.bits&^AddrMask | a&AddrMask}
}

// String renders the pointer as perm/len@addr(+offset) for diagnostics.
func (p Pointer) String() string {
	return fmt.Sprintf("[%s 2^%d @%#x+%#x]", p.Perm(), p.LogLen(), p.Base(), p.Offset())
}
