package core

// Perm is the 4-bit permission field of a guarded pointer (Fig. 1). The
// encodings below cover the paper's representative set (Sec 2.1): data
// access (read-only, read/write), code access (execute-user,
// execute-privileged), protected entry points (enter-user,
// enter-privileged) and unforgeable identifiers (key). Values 8–15 are
// reserved; decoding them yields PermInvalid behavior (no rights).
type Perm uint8

const (
	// PermNone grants no rights and marks a malformed pointer.
	PermNone Perm = 0

	// PermKey is an unforgeable, unalterable identifier. It may not be
	// dereferenced, jumped to, or modified — its only use is comparison.
	PermKey Perm = 1

	// PermReadOnly allows loads from the segment.
	PermReadOnly Perm = 2

	// PermReadWrite allows loads and stores.
	PermReadWrite Perm = 3

	// PermExecuteUser is a read-only pointer that may also be the target
	// of a jump; it does not enable privileged instructions.
	PermExecuteUser Perm = 4

	// PermExecutePriv is an execute pointer that additionally encodes
	// the supervisor mode bit: privileged instructions may only execute
	// under an execute-privileged instruction pointer.
	PermExecutePriv Perm = 5

	// PermEnterUser is a protected entry point: jumping to it converts
	// it to PermExecuteUser in the instruction pointer. It may not be
	// modified or dereferenced.
	PermEnterUser Perm = 6

	// PermEnterPriv is the privileged protected entry point, converting
	// to PermExecutePriv on jump. Jumping to one is how privileged mode
	// is entered (Sec 2.2, "Pointer Creation").
	PermEnterPriv Perm = 7

	// NumPerms is the count of architecturally defined permission
	// encodings.
	NumPerms = 8
)

var permNames = [...]string{
	PermNone:        "none",
	PermKey:         "key",
	PermReadOnly:    "read-only",
	PermReadWrite:   "read/write",
	PermExecuteUser: "execute-user",
	PermExecutePriv: "execute-priv",
	PermEnterUser:   "enter-user",
	PermEnterPriv:   "enter-priv",
}

func (p Perm) String() string {
	if int(p) < len(permNames) {
		return permNames[p]
	}
	return "reserved"
}

// Valid reports whether p is one of the architecturally defined
// permission encodings other than PermNone.
func (p Perm) Valid() bool { return p > PermNone && p < NumPerms }

// CanLoad reports whether a pointer with this permission may be the
// address operand of a load. Execute pointers are read-only pointers
// (Sec 2.1), so they can load.
func (p Perm) CanLoad() bool {
	switch p {
	case PermReadOnly, PermReadWrite, PermExecuteUser, PermExecutePriv:
		return true
	}
	return false
}

// CanStore reports whether a pointer with this permission may be the
// address operand of a store.
func (p Perm) CanStore() bool { return p == PermReadWrite }

// CanExecute reports whether the pointer may sit in the instruction
// pointer (i.e. is an execute pointer of either mode).
func (p Perm) CanExecute() bool {
	return p == PermExecuteUser || p == PermExecutePriv
}

// IsEnter reports whether the pointer is a protected entry point.
func (p Perm) IsEnter() bool {
	return p == PermEnterUser || p == PermEnterPriv
}

// CanJumpTo reports whether a jump instruction accepts the pointer as a
// target: execute pointers (direct transfer) and enter pointers
// (protected entry, converted on the way in).
func (p Perm) CanJumpTo() bool { return p.CanExecute() || p.IsEnter() }

// Privileged reports whether the permission carries supervisor
// authority when installed in the instruction pointer.
func (p Perm) Privileged() bool {
	return p == PermExecutePriv || p == PermEnterPriv
}

// Modifiable reports whether LEA/LEAB/RESTRICT/SUBSEG may operate on a
// pointer with this permission. "A read-only, read/write, or execute
// pointer's address field may be altered as long as it remains within
// its segment bounds" (Sec 2.1); enter and key pointers are immutable.
func (p Perm) Modifiable() bool {
	switch p {
	case PermReadOnly, PermReadWrite, PermExecuteUser, PermExecutePriv:
		return true
	}
	return false
}

// EnterTarget returns the execute permission an enter pointer converts
// to when jumped through, and ok=false if p is not an enter permission.
func (p Perm) EnterTarget() (Perm, bool) {
	switch p {
	case PermEnterUser:
		return PermExecuteUser, true
	case PermEnterPriv:
		return PermExecutePriv, true
	}
	return PermNone, false
}

// permSubsets[p] is the set (bitmask) of permissions that are *strict*
// subsets of p for the purposes of the RESTRICT instruction. The
// operation-set reasoning:
//
//	key          ⟶ ∅ (no rights): strict subset of every other valid perm
//	read-only    ⟶ {load}
//	read/write   ⟶ {load, store}
//	execute-user ⟶ {load, jump-user}
//	execute-priv ⟶ {load, jump-user, jump-priv, privileged}
//	enter-user   ⟶ {protected entry at user level}
//	enter-priv   ⟶ {protected entry at privileged level}
//
// An enter pointer conveys strictly less than the corresponding execute
// pointer (the holder can transfer control to the segment but can never
// read it or jump to an arbitrary offset), so execute→enter is a legal
// restriction. Enter and key pointers themselves are immutable, so
// nothing may be derived from them.
var permSubsets = [NumPerms]uint16{
	PermReadWrite:   1<<PermReadOnly | 1<<PermKey,
	PermReadOnly:    1 << PermKey,
	PermExecuteUser: 1<<PermReadOnly | 1<<PermEnterUser | 1<<PermKey,
	PermExecutePriv: 1<<PermExecuteUser | 1<<PermReadOnly |
		1<<PermEnterPriv | 1<<PermEnterUser | 1<<PermKey,
}

// StrictSubset reports whether to is a strict subset of from, i.e.
// whether RESTRICT(from → to) is architecturally legal.
func StrictSubset(to, from Perm) bool {
	if !from.Valid() || !to.Valid() || int(from) >= NumPerms {
		return false
	}
	return permSubsets[from]&(1<<to) != 0
}
