package core

import "fmt"

// FaultCode classifies the protection exceptions a guarded-pointer
// machine can raise. The paper performs all of these checks before a
// memory operation issues (Sec 2.2), so a fault is always attributable to
// a specific pointer and operation, never to a state left in a table.
type FaultCode uint8

const (
	// FaultNone is the zero value; it never appears in a returned Fault.
	FaultNone FaultCode = iota

	// FaultTag: a word without the pointer bit was used where a guarded
	// pointer is required (e.g. as the address operand of a load).
	FaultTag

	// FaultPerm: the pointer's permission field does not allow the
	// attempted operation (e.g. store through a read-only pointer).
	FaultPerm

	// FaultBounds: an LEA/LEAB result would lie outside the segment of
	// the source pointer — the masked comparator of Fig. 2 saw a fixed
	// (segment) bit change.
	FaultBounds

	// FaultPriv: a privileged operation (SETPTR, or executing a
	// privileged instruction) was attempted without an
	// execute-privileged instruction pointer.
	FaultPriv

	// FaultLength: a segment length field is malformed (log2 length
	// greater than the 54-bit address space) or a SUBSEG/RESTRICT
	// argument is not a strict reduction.
	FaultLength

	// FaultImmutable: an attempt to modify a pointer type that the
	// architecture defines as unmodifiable (ENTER and KEY pointers,
	// Sec 2.1).
	FaultImmutable
)

var faultNames = [...]string{
	FaultNone:      "none",
	FaultTag:       "tag",
	FaultPerm:      "permission",
	FaultBounds:    "bounds",
	FaultPriv:      "privilege",
	FaultLength:    "length",
	FaultImmutable: "immutable",
}

func (c FaultCode) String() string {
	if int(c) < len(faultNames) {
		return faultNames[c]
	}
	return fmt.Sprintf("fault(%d)", uint8(c))
}

// Fault is the error type returned by all pointer operations. It records
// which check failed and a human-readable context. Fault implements
// error; callers that need the code should use errors.As or the Code
// accessor.
type Fault struct {
	Code FaultCode
	Op   string // the architectural operation, e.g. "LEA", "RESTRICT"
	Msg  string
}

func (f *Fault) Error() string {
	if f.Msg == "" {
		return fmt.Sprintf("%s: %s fault", f.Op, f.Code)
	}
	return fmt.Sprintf("%s: %s fault: %s", f.Op, f.Code, f.Msg)
}

func faultf(code FaultCode, op, format string, args ...interface{}) *Fault {
	return &Fault{Code: code, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the fault code from an error produced by this package,
// or FaultNone if err is nil or not a *Fault.
func CodeOf(err error) FaultCode {
	if f, ok := err.(*Fault); ok {
		return f.Code
	}
	return FaultNone
}
