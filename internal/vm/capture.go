package vm

import (
	"sort"

	"repro/internal/word"
)

// This file is the translation layer's side of incremental
// checkpointing (internal/persist): observing and clearing the page
// table's dirty bits atomically with respect to a capture barrier, and
// tracking the two mutations dirty bits cannot express — fresh mappings
// (a re-map after a free can reuse a frame with new contents and a
// clean PTE) and backing-store writes (swap-out, checkpoint swap
// restore, ZeroWords scrubbing a swapped page in place).

// CollectDirty returns the base address of every resident page whose
// dirty bit is set, in ascending page order. When clear is set the bits
// are cleared in the same walk, so a store landing after the walk—
// however soon — is guaranteed to set the bit again for the next
// collection: observe and clear are one pass, never two.
func (pt *PageTable) CollectDirty(clear bool) []uint64 {
	var pages []uint64
	pt.walkMut(func(page uint64, pte *PTE) {
		if pte.Dirty {
			pages = append(pages, page)
			if clear {
				pte.Dirty = false
			}
		}
	})
	return pages
}

// walkMut visits every valid PTE by pointer, in ascending page order.
func (pt *PageTable) walkMut(fn func(page uint64, pte *PTE)) {
	pt.walkNodeMut(pt.root, 0, 0, fn)
}

func (pt *PageTable) walkNodeMut(n *ptNode, level int, prefix uint64, fn func(uint64, *PTE)) {
	if n == nil {
		return
	}
	if level == levels-1 {
		for i := range n.ptes {
			if n.ptes[i].Valid {
				vpn := prefix<<levelBits | uint64(i)
				fn(vpn<<PageShift, &n.ptes[i])
			}
		}
		return
	}
	for i, child := range n.children {
		if child == nil {
			continue
		}
		pt.walkNodeMut(child, level+1, prefix<<levelBits|uint64(i), fn)
	}
}

// DirtyPages returns every resident page dirtied since the last
// clearing pass, ascending. With clear set, the page-table bits are
// cleared in the same single pass AND the translation micro-cache's
// per-entry dirty hints are dropped with them. The hints matter:
// setDirtyFast's fast path relies on the invariant that the PT never
// clears a dirty bit while a page stays mapped. A capture that cleared
// PT bits but left the hints standing would make the very next store to
// a hint-covered page skip PT.SetDirty — and that page would silently
// vanish from the next delta.
func (s *Space) DirtyPages(clear bool) []uint64 {
	pages := s.PT.CollectDirty(clear)
	if clear {
		for i := range s.tc {
			s.tc[i].dirty = false
		}
	}
	return pages
}

// StartCaptureTracking arms the mutation sets DrainCaptureTouched
// reports. Idempotent; tracking stays on for the Space's lifetime (the
// cost is a map insert on swap traffic and fresh mappings only).
func (s *Space) StartCaptureTracking() {
	s.track = true
	if s.freshMaps == nil {
		s.freshMaps = make(map[uint64]struct{})
		s.touchedSwap = make(map[uint64]struct{})
	}
}

// trackMap records a page freshly entered into the page table.
func (s *Space) trackMap(page uint64) {
	if s.track {
		s.freshMaps[page] = struct{}{}
	}
}

// trackSwap records a backing-store page whose contents changed.
func (s *Space) trackSwap(page uint64) {
	if s.track {
		s.touchedSwap[page] = struct{}{}
	}
}

// DrainCaptureTouched returns (and resets) the pages freshly mapped and
// the backing-store pages mutated since the previous drain, each sorted
// ascending. Meaningful only after StartCaptureTracking.
func (s *Space) DrainCaptureTouched() (freshMapped, swapTouched []uint64) {
	for p := range s.freshMaps {
		freshMapped = append(freshMapped, p)
		delete(s.freshMaps, p)
	}
	for p := range s.touchedSwap {
		swapTouched = append(swapTouched, p)
		delete(s.touchedSwap, p)
	}
	sort.Slice(freshMapped, func(i, j int) bool { return freshMapped[i] < freshMapped[j] })
	sort.Slice(swapTouched, func(i, j int) bool { return swapTouched[i] < swapTouched[j] })
	return freshMapped, swapTouched
}

// SwapPage returns a copy of one backing-store page (by any address
// within it) and whether it exists.
func (s *Space) SwapPage(vaddr uint64) ([]word.Word, bool) {
	buf, ok := s.swap[vaddr&^uint64(PageMask)]
	if !ok {
		return nil, false
	}
	return append([]word.Word(nil), buf...), true
}

// SwapPageList returns the base address of every backing-store page,
// sorted ascending.
func (s *Space) SwapPageList() []uint64 {
	pages := make([]uint64, 0, len(s.swap))
	for p := range s.swap {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return pages
}
