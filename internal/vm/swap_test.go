package vm

import (
	"testing"

	"repro/internal/word"
)

func TestSwapOutIn(t *testing.T) {
	s, _ := NewSpace(16*PageSize, 8)
	s.EnsureMapped(0x3000, PageSize)
	s.WriteWord(0x3000, word.Tagged(0xcafe)) // a capability in the page
	s.WriteWord(0x3008, word.FromInt(-9))

	freeBefore := s.Frames.Free()
	if err := s.SwapOut(0x3000); err != nil {
		t.Fatal(err)
	}
	if !s.Swapped(0x3456) {
		t.Error("page not reported swapped")
	}
	if s.Frames.Free() != freeBefore+1 {
		t.Error("frame not released")
	}
	if _, _, err := s.Translate(0x3000); err == nil {
		t.Error("swapped page still translates")
	}

	if err := s.SwapIn(0x3000); err != nil {
		t.Fatal(err)
	}
	if s.Swapped(0x3000) {
		t.Error("page still marked swapped after swap-in")
	}
	// Tags survive the round trip.
	w, err := s.ReadWord(0x3000)
	if err != nil || !w.Tag || w.Bits != 0xcafe {
		t.Errorf("capability after swap round trip: %v %v", w, err)
	}
	w2, _ := s.ReadWord(0x3008)
	if w2.Int() != -9 {
		t.Errorf("data after swap: %v", w2)
	}
	st := s.SwapStatsSnapshot()
	if st.SwapOuts != 1 || st.SwapIns != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSwapErrors(t *testing.T) {
	s, _ := NewSpace(16*PageSize, 8)
	if err := s.SwapOut(0x5000); err == nil {
		t.Error("swap-out of unmapped page accepted")
	}
	if err := s.SwapIn(0x5000); err == nil {
		t.Error("swap-in of never-swapped page accepted")
	}
}

func TestDropSwapped(t *testing.T) {
	s, _ := NewSpace(16*PageSize, 8)
	s.EnsureMapped(0x2000, PageSize)
	s.SwapOut(0x2000)
	s.DropSwapped(0x2000)
	if s.Swapped(0x2000) || s.SwappedPages() != 0 {
		t.Error("DropSwapped did not discard")
	}
}

func TestWalkAndResidentPages(t *testing.T) {
	s, _ := NewSpace(32*PageSize, 8)
	want := map[uint64]bool{}
	for _, v := range []uint64{0x1000, 0x7000, 1 << 30, (1 << 53) + 0x4000} {
		if err := s.EnsureMapped(v, 8); err != nil {
			t.Fatal(err)
		}
		want[v&^uint64(PageMask)] = true
	}
	got := map[uint64]bool{}
	for _, pg := range s.ResidentPages() {
		got[pg] = true
	}
	if len(got) != len(want) {
		t.Fatalf("resident = %v, want %v", got, want)
	}
	for pg := range want {
		if !got[pg] {
			t.Errorf("page %#x missing from walk", pg)
		}
	}
	// Early stop.
	n := 0
	s.PT.Walk(func(uint64, PTE) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("walk did not stop early: %d", n)
	}
}

func TestZeroWords(t *testing.T) {
	s, _ := NewSpace(16*PageSize, 8)
	s.EnsureMapped(0x1000, 2*PageSize)
	s.WriteWord(0x1000, word.Tagged(1))
	s.WriteWord(0x1ff8, word.FromInt(2))
	s.WriteWord(0x2000, word.FromInt(3))
	s.SwapOut(0x2000) // second page lives in swap now

	if err := s.ZeroWords(0x1000, 0x2008); err != nil {
		t.Fatal(err)
	}
	w, _ := s.ReadWord(0x1000)
	if !w.IsZero() {
		t.Error("resident word not zeroed")
	}
	// Swapped page scrubbed in the backing store: swap it back and
	// check.
	if err := s.SwapIn(0x2000); err != nil {
		t.Fatal(err)
	}
	w2, _ := s.ReadWord(0x2000)
	if !w2.IsZero() {
		t.Errorf("swapped word not scrubbed: %v", w2)
	}
	// Zero over never-materialized pages is a no-op, not an error.
	if err := s.ZeroWords(0x100000, 0x102000); err != nil {
		t.Errorf("ZeroWords over unmapped: %v", err)
	}
	if err := s.ZeroWords(10, 10); err != nil {
		t.Errorf("empty range: %v", err)
	}
}
