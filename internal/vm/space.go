package vm

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/telemetry"
	"repro/internal/word"
)

// Space is the machine's single shared virtual address space: the page
// table, a TLB, physical memory and its frame allocator, glued together
// with the translation discipline of the paper — translate only below
// the (virtually addressed) cache, and never consult any protection
// state here.
type Space struct {
	PT     *PageTable
	TLB    *TLB
	Phys   *mem.Memory
	Frames *mem.FrameAllocator

	// Tracer, when non-nil, receives TLB-miss, page-fault and swap
	// events; Now supplies the cycle stamp (the owning machine sets
	// both — a bare Space leaves them nil and pays nothing).
	Tracer *telemetry.Tracer
	Now    func() uint64

	// OnWrite, when non-nil, observes the virtual address of every
	// successful word or byte store through the space. The owning
	// machine uses it to invalidate pre-decoded instructions covering
	// the written word (self-modifying or reloaded code).
	OnWrite func(vaddr uint64)
	// OnUnmap, when non-nil, observes every UnmapRange call before the
	// translations are destroyed (decoded-instruction shootdown for
	// revoked code ranges).
	OnUnmap func(vaddr, size uint64)

	stats     SpaceStats
	swap      map[uint64]swapPage
	swapStats SwapStats

	// Incremental-checkpoint mutation tracking (capture.go): armed by
	// StartCaptureTracking, drained at each capture barrier. freshMaps
	// records pages newly entered into the page table (their PTE starts
	// clean even when the frame's contents are new); touchedSwap records
	// backing-store pages whose buffers changed (swap-out, restore,
	// in-place scrub) — mutations no resident dirty bit can witness.
	track       bool
	freshMaps   map[uint64]struct{}
	touchedSwap map[uint64]struct{}

	// tc is a small direct-mapped translation micro-cache (indexed by
	// low VPN bits): repeated references to recently translated pages —
	// instruction fetch and the data stream it interleaves with — skip
	// the TLB's associative scan. It is a pure simulator optimization,
	// not a model change: TLB.touch replays the hit statistics and LRU
	// effects exactly, and gen invalidates every entry whenever the TLB
	// changes under it (Insert, Invalidate on unmap/swap-out, Flush), so
	// every counter the experiments report is bit-identical with the
	// cache on or off.
	tc [tcEntries]tcEntry
}

const (
	tcEntries = 64
	tcMask    = tcEntries - 1
)

type tcEntry struct {
	vpn   uint64
	frame uint64
	idx   int    // index of the backing TLB entry, for TLB.touch
	gen   uint64 // TLB generation the entry was filled under
	ok    bool
	// dirty records that PT.SetDirty already ran for this page under
	// this gen; stores can then skip the radix walk. The PT never
	// clears a dirty bit while the page stays mapped (only a re-Map
	// after an unmap does, and unmapping bumps gen).
	dirty bool
}

// SpaceStats counts translation-layer work.
type SpaceStats struct {
	Translations uint64
	PageWalks    uint64
	PageFaults   uint64
	DemandMaps   uint64
}

// NewSpace builds a Space over physBytes of physical memory with a
// tlbEntries-entry TLB.
func NewSpace(physBytes uint64, tlbEntries int) (*Space, error) {
	phys := mem.New(physBytes)
	frames, err := mem.NewFrameAllocator(phys, PageSize)
	if err != nil {
		return nil, err
	}
	return &Space{
		PT:     NewPageTable(),
		TLB:    NewTLB(tlbEntries),
		Phys:   phys,
		Frames: frames,
	}, nil
}

// Translate maps a 54-bit virtual address to a physical address,
// consulting the TLB first and walking the page table on a miss. It
// returns the physical address and whether the TLB hit. Unmapped pages
// produce a *PageFaultError.
func (s *Space) Translate(vaddr uint64) (paddr uint64, tlbHit bool, err error) {
	s.stats.Translations++
	vpn := vpnOf(vaddr)
	e := &s.tc[vpn&tcMask]
	if e.ok && e.vpn == vpn && e.gen == s.TLB.gen {
		s.TLB.touch(e.idx)
		return e.frame | vaddr&PageMask, true, nil
	}
	if pte, idx, ok := s.TLB.lookupIdx(vaddr, GlobalASID); ok {
		if s.TLB.poisonedAt(idx) {
			// Entry parity check: a hit on a corrupted entry is a
			// machine check, never a silent wrong translation.
			return 0, true, &TLBParityError{VAddr: vaddr, Slot: idx}
		}
		*e = tcEntry{vpn: vpn, frame: pte.Frame, idx: idx, gen: s.TLB.gen, ok: true}
		return pte.Frame | vaddr&PageMask, true, nil
	}
	s.stats.PageWalks++
	if s.Tracer != nil && s.Tracer.Enabled(telemetry.EvTLBMiss) {
		s.Tracer.Emit(telemetry.Event{Cycle: s.cycle(), Kind: telemetry.EvTLBMiss,
			Thread: -1, Cluster: -1, Domain: -1, Addr: vaddr})
	}
	pte, ok := s.PT.Lookup(vaddr)
	if !ok {
		s.stats.PageFaults++
		if s.Tracer != nil && s.Tracer.Enabled(telemetry.EvPageFault) {
			s.Tracer.Emit(telemetry.Event{Cycle: s.cycle(), Kind: telemetry.EvPageFault,
				Thread: -1, Cluster: -1, Domain: -1, Addr: vaddr})
		}
		return 0, false, &PageFaultError{VAddr: vaddr}
	}
	s.TLB.Insert(vaddr, GlobalASID, pte)
	return pte.Frame | vaddr&PageMask, false, nil
}

// TLBParityError reports a translation that hit a TLB entry marked
// poisoned by TLB.CorruptEntry — the model's analog of a TLB parity
// machine check.
type TLBParityError struct {
	VAddr uint64 // virtual address whose lookup hit the bad entry
	Slot  int    // TLB slot holding the corrupted entry
}

func (e *TLBParityError) Error() string {
	return fmt.Sprintf("vm: tlb parity error translating %#x (slot %d corrupted)", e.VAddr, e.Slot)
}

// CorruptionDetected marks this error as an explicit
// corruption-detection signal for the fault-injection audit
// (docs/ROBUSTNESS.md).
func (e *TLBParityError) CorruptionDetected() bool { return true }

// cycle returns the owner-supplied cycle stamp, or 0 when the space
// runs standalone.
func (s *Space) cycle() uint64 {
	if s.Now != nil {
		return s.Now()
	}
	return 0
}

// EnsureMapped demand-maps every page overlapping [vaddr, vaddr+size),
// allocating zeroed physical frames as needed. The kernel calls this
// when it creates a segment; only the pages actually backing a segment
// cost physical memory (Sec 4.2).
func (s *Space) EnsureMapped(vaddr, size uint64) error {
	if size == 0 {
		return nil
	}
	first := vaddr &^ uint64(PageMask)
	last := (vaddr + size - 1) &^ uint64(PageMask)
	for page := first; ; page += PageSize {
		if _, ok := s.PT.Lookup(page); !ok {
			frame, err := s.Frames.Alloc()
			if err != nil {
				return fmt.Errorf("vm: mapping %#x: %w", page, err)
			}
			if err := s.Phys.ZeroRange(frame, PageSize); err != nil {
				return err
			}
			if err := s.PT.Map(page, frame); err != nil {
				return err
			}
			s.trackMap(page)
			s.stats.DemandMaps++
		}
		if page == last {
			return nil
		}
	}
}

// UnmapRange removes translations for every page overlapping
// [vaddr, vaddr+size), releases their frames, and shoots the pages out
// of the TLB. This is the revocation primitive of Sec 4.3: every guarded
// pointer into the range is simultaneously invalidated, because all
// subsequent uses page-fault. It returns the number of pages unmapped.
func (s *Space) UnmapRange(vaddr, size uint64) (int, error) {
	if size == 0 {
		return 0, nil
	}
	if s.OnUnmap != nil {
		s.OnUnmap(vaddr, size)
	}
	n := 0
	first := vaddr &^ uint64(PageMask)
	last := (vaddr + size - 1) &^ uint64(PageMask)
	for page := first; ; page += PageSize {
		if pte, ok := s.PT.Lookup(page); ok {
			if err := s.Frames.Release(pte.Frame); err != nil {
				return n, err
			}
			s.PT.Unmap(page)
			s.TLB.Invalidate(page)
			n++
		}
		if page == last {
			return n, nil
		}
	}
}

// setDirtyFast marks the page containing vaddr dirty, skipping the
// page-table radix walk when the micro-cache proves it already ran for
// this page: the PT never clears a dirty bit while a page stays mapped,
// and any unmap/remap bumps the TLB generation the entry checks.
func (s *Space) setDirtyFast(vaddr uint64) {
	vpn := vpnOf(vaddr)
	e := &s.tc[vpn&tcMask]
	hit := e.ok && e.vpn == vpn && e.gen == s.TLB.gen
	if hit && e.dirty {
		return
	}
	s.PT.SetDirty(vaddr)
	if hit {
		e.dirty = true
	}
}

// ReadWord translates and reads the naturally aligned word at vaddr.
func (s *Space) ReadWord(vaddr uint64) (word.Word, error) {
	paddr, _, err := s.Translate(vaddr)
	if err != nil {
		return word.Word{}, err
	}
	return s.Phys.ReadWord(paddr)
}

// WriteWord translates and writes the naturally aligned word at vaddr.
func (s *Space) WriteWord(vaddr uint64, w word.Word) error {
	paddr, _, err := s.Translate(vaddr)
	if err != nil {
		return err
	}
	s.setDirtyFast(vaddr)
	if err := s.Phys.WriteWord(paddr, w); err != nil {
		return err
	}
	if s.OnWrite != nil {
		s.OnWrite(vaddr)
	}
	return nil
}

// ByteAt translates and reads the byte at vaddr (any alignment).
func (s *Space) ByteAt(vaddr uint64) (byte, error) {
	paddr, _, err := s.Translate(vaddr)
	if err != nil {
		return 0, err
	}
	return s.Phys.ByteAt(paddr)
}

// SetByteAt translates and writes the byte at vaddr; the containing
// word's tag is cleared (capability integrity under partial
// overwrite).
func (s *Space) SetByteAt(vaddr uint64, b byte) error {
	paddr, _, err := s.Translate(vaddr)
	if err != nil {
		return err
	}
	s.setDirtyFast(vaddr)
	if err := s.Phys.SetByteAt(paddr, b); err != nil {
		return err
	}
	if s.OnWrite != nil {
		s.OnWrite(vaddr)
	}
	return nil
}

// Stats returns a copy of the translation counters.
func (s *Space) Stats() SpaceStats { return s.stats }

// RegisterMetrics publishes the translation, TLB and swap counters
// under prefix (canonically "vm"): vm.translations, vm.tlb.misses,
// vm.swap.outs, ….
func (s *Space) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".translations", func() uint64 { return s.stats.Translations })
	reg.Counter(prefix+".page_walks", func() uint64 { return s.stats.PageWalks })
	reg.Counter(prefix+".page_faults", func() uint64 { return s.stats.PageFaults })
	reg.Counter(prefix+".demand_maps", func() uint64 { return s.stats.DemandMaps })
	reg.Counter(prefix+".tlb.hits", func() uint64 { return s.TLB.stats.Hits })
	reg.Counter(prefix+".tlb.misses", func() uint64 { return s.TLB.stats.Misses })
	reg.Counter(prefix+".tlb.flushes", func() uint64 { return s.TLB.stats.Flushes })
	reg.Counter(prefix+".tlb.flushed_entries", func() uint64 { return s.TLB.stats.FlushedEntries })
	reg.Counter(prefix+".swap.ins", func() uint64 { return s.swapStats.SwapIns })
	reg.Counter(prefix+".swap.outs", func() uint64 { return s.swapStats.SwapOuts })
	reg.Register(prefix+".swap.pages", func() float64 { return float64(len(s.swap)) })
	reg.Register(prefix+".tlb.live", func() float64 { return float64(s.TLB.Live()) })
}
