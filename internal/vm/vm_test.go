package vm

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/word"
)

func TestPageTableMapLookup(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0x12345678, 0x4000); err != nil {
		t.Fatal(err)
	}
	pte, ok := pt.Lookup(0x12345000)
	if !ok || pte.Frame != 0x4000 {
		t.Fatalf("Lookup = %+v, %v", pte, ok)
	}
	// Every address in the same page resolves to the same frame.
	if pte2, ok := pt.Lookup(0x12345fff); !ok || pte2.Frame != 0x4000 {
		t.Error("same-page lookup failed")
	}
	// Adjacent page is unmapped.
	if _, ok := pt.Lookup(0x12346000); ok {
		t.Error("adjacent page mapped")
	}
}

func TestPageTableRejectsUnalignedFrame(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0, 0x4001); err == nil {
		t.Error("unaligned frame accepted")
	}
}

func TestPageTableUnmap(t *testing.T) {
	pt := NewPageTable()
	pt.Map(0x1000, 0x2000)
	if !pt.Unmap(0x1fff) {
		t.Error("unmap of mapped page returned false")
	}
	if pt.Unmap(0x1000) {
		t.Error("unmap of unmapped page returned true")
	}
	if _, ok := pt.Lookup(0x1000); ok {
		t.Error("lookup succeeded after unmap")
	}
	if pt.Entries() != 0 {
		t.Errorf("Entries = %d", pt.Entries())
	}
}

func TestPageTableHighAddresses(t *testing.T) {
	pt := NewPageTable()
	top := uint64(1)<<54 - PageSize
	if err := pt.Map(top, 0x7000); err != nil {
		t.Fatal(err)
	}
	if pte, ok := pt.Lookup(top + 123); !ok || pte.Frame != 0x7000 {
		t.Error("top-of-space lookup failed")
	}
	if pt.Entries() != 1 {
		t.Errorf("Entries = %d", pt.Entries())
	}
}

func TestPageTableRemapOverwrites(t *testing.T) {
	pt := NewPageTable()
	pt.Map(0x1000, 0x2000)
	pt.Map(0x1000, 0x3000)
	if pte, _ := pt.Lookup(0x1000); pte.Frame != 0x3000 {
		t.Errorf("Frame = %#x after remap", pte.Frame)
	}
	if pt.Entries() != 1 {
		t.Errorf("Entries = %d after remap", pt.Entries())
	}
}

func TestPageTableDirtyReferenced(t *testing.T) {
	pt := NewPageTable()
	pt.Map(0x1000, 0x2000)
	pt.SetDirty(0x1008)
	pte, _ := pt.Lookup(0x1000)
	if !pte.Dirty || !pte.Referenced {
		t.Errorf("pte = %+v, want dirty+referenced", pte)
	}
}

func TestPageTableWalkLengthAndBytes(t *testing.T) {
	pt := NewPageTable()
	if pt.WalkLength() != 3 {
		t.Errorf("WalkLength = %d", pt.WalkLength())
	}
	before := pt.ApproxBytes()
	pt.Map(0, 0)
	if pt.ApproxBytes() <= before {
		t.Error("mapping did not grow table storage")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(4)
	if _, ok := tlb.Lookup(0x1000, GlobalASID); ok {
		t.Fatal("hit in empty TLB")
	}
	tlb.Insert(0x1000, GlobalASID, PTE{Frame: 0xa000, Valid: true})
	pte, ok := tlb.Lookup(0x1234, GlobalASID) // same page
	if !ok || pte.Frame != 0xa000 {
		t.Fatalf("lookup after insert = %+v, %v", pte, ok)
	}
	s := tlb.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTLBASIDIsolation(t *testing.T) {
	tlb := NewTLB(8)
	tlb.Insert(0x1000, 1, PTE{Frame: 0xa000, Valid: true})
	if _, ok := tlb.Lookup(0x1000, 2); ok {
		t.Error("entry visible under wrong ASID")
	}
	if _, ok := tlb.Lookup(0x1000, 1); !ok {
		t.Error("entry not visible under its own ASID")
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(0x1000, 0, PTE{Frame: 0x1000, Valid: true})
	tlb.Insert(0x2000, 0, PTE{Frame: 0x2000, Valid: true})
	tlb.Lookup(0x1000, 0)                                  // make 0x1000 most recent
	tlb.Insert(0x3000, 0, PTE{Frame: 0x3000, Valid: true}) // evicts 0x2000
	if _, ok := tlb.Lookup(0x1000, 0); !ok {
		t.Error("MRU entry evicted")
	}
	if _, ok := tlb.Lookup(0x2000, 0); ok {
		t.Error("LRU entry survived")
	}
}

func TestTLBInsertUpdatesExisting(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(0x1000, 0, PTE{Frame: 0x1000, Valid: true})
	tlb.Insert(0x1000, 0, PTE{Frame: 0x9000, Valid: true})
	if tlb.Live() != 1 {
		t.Errorf("Live = %d after duplicate insert", tlb.Live())
	}
	if pte, _ := tlb.Lookup(0x1000, 0); pte.Frame != 0x9000 {
		t.Error("duplicate insert did not update")
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(8)
	for i := uint64(0); i < 5; i++ {
		tlb.Insert(i<<PageShift, 0, PTE{Frame: i << PageShift, Valid: true})
	}
	tlb.Flush()
	if tlb.Live() != 0 {
		t.Errorf("Live = %d after flush", tlb.Live())
	}
	s := tlb.Stats()
	if s.Flushes != 1 || s.FlushedEntries != 5 {
		t.Errorf("stats = %+v", s)
	}
	tlb.ResetStats()
	if tlb.Stats() != (TLBStats{}) {
		t.Error("ResetStats did not zero")
	}
}

func TestTLBInvalidate(t *testing.T) {
	tlb := NewTLB(8)
	tlb.Insert(0x1000, 1, PTE{Frame: 0xa000, Valid: true})
	tlb.Insert(0x1000, 2, PTE{Frame: 0xa000, Valid: true})
	tlb.Insert(0x2000, 1, PTE{Frame: 0xb000, Valid: true})
	tlb.Invalidate(0x1000)
	if tlb.Live() != 1 {
		t.Errorf("Live = %d after invalidate, want 1 (all ASIDs shot down)", tlb.Live())
	}
}

func TestSpaceTranslate(t *testing.T) {
	s, err := NewSpace(1<<20, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnsureMapped(0x40000, 100); err != nil {
		t.Fatal(err)
	}
	paddr1, hit1, err := s.Translate(0x40008)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Error("first translation hit TLB")
	}
	paddr2, hit2, err := s.Translate(0x40008)
	if err != nil || !hit2 || paddr2 != paddr1 {
		t.Errorf("second translation: %#x %v %v", paddr2, hit2, err)
	}
	if paddr1&uint64(PageMask) != 0x008 {
		t.Errorf("page offset not preserved: %#x", paddr1)
	}
}

func TestSpacePageFault(t *testing.T) {
	s, _ := NewSpace(1<<20, 16)
	_, _, err := s.Translate(0x999000)
	var pf *PageFaultError
	if !errors.As(err, &pf) {
		t.Fatalf("err = %v, want PageFaultError", err)
	}
	if pf.VAddr != 0x999000 || pf.Error() == "" {
		t.Errorf("fault = %+v", pf)
	}
}

func TestSpaceReadWriteWord(t *testing.T) {
	s, _ := NewSpace(1<<20, 16)
	if err := s.EnsureMapped(0x7000, 4096); err != nil {
		t.Fatal(err)
	}
	w := word.Tagged(0x1234)
	if err := s.WriteWord(0x7010, w); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadWord(0x7010)
	if err != nil || got != w {
		t.Errorf("ReadWord = %v, %v", got, err)
	}
	if err := s.WriteWord(0xff0000, w); err == nil {
		t.Error("write to unmapped page succeeded")
	}
}

func TestSpaceEnsureMappedSpansPages(t *testing.T) {
	s, _ := NewSpace(1<<20, 16)
	// Range straddling three pages.
	if err := s.EnsureMapped(0x1ff8, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{0x1ff8, 0x2000, 0x3ff8} {
		if _, _, err := s.Translate(v); err != nil {
			t.Errorf("Translate(%#x): %v", v, err)
		}
	}
	if s.Stats().DemandMaps != 3 {
		t.Errorf("DemandMaps = %d, want 3", s.Stats().DemandMaps)
	}
	// Idempotent.
	if err := s.EnsureMapped(0x2000, 8); err != nil {
		t.Fatal(err)
	}
	if s.Stats().DemandMaps != 3 {
		t.Error("remap allocated fresh frames")
	}
	if err := s.EnsureMapped(0x9000, 0); err != nil {
		t.Errorf("zero-size EnsureMapped: %v", err)
	}
}

func TestSpaceUnmapRangeRevokes(t *testing.T) {
	s, _ := NewSpace(1<<20, 16)
	s.EnsureMapped(0x10000, 3*PageSize)
	s.WriteWord(0x10000, word.FromInt(7))
	s.Translate(0x10000) // warm TLB
	n, err := s.UnmapRange(0x10000, 3*PageSize)
	if err != nil || n != 3 {
		t.Fatalf("UnmapRange = %d, %v", n, err)
	}
	// Every subsequent access faults — the revocation semantics of
	// Sec 4.3.
	if _, _, err := s.Translate(0x10000); err == nil {
		t.Error("translate after unmap succeeded (TLB not shot down?)")
	}
	if n, _ := s.UnmapRange(0x10000, PageSize); n != 0 {
		t.Error("double unmap found pages")
	}
	if n, err := s.UnmapRange(0x10000, 0); n != 0 || err != nil {
		t.Error("zero-size unmap did work")
	}
}

func TestSpaceFrameRecyclingZeroes(t *testing.T) {
	s, _ := NewSpace(16*PageSize, 4)
	s.EnsureMapped(0x1000, PageSize)
	s.WriteWord(0x1000, word.Tagged(0xdead)) // plant a pointer
	s.UnmapRange(0x1000, PageSize)
	// Exhaust frames so the recycled one is reused.
	if err := s.EnsureMapped(0x100000, 16*PageSize); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 16*PageSize; off += 8 {
		w, err := s.ReadWord(0x100000 + off)
		if err != nil {
			t.Fatal(err)
		}
		if w.Tag {
			t.Fatalf("stale pointer leaked into recycled frame at +%#x", off)
		}
	}
}

// Property: translation preserves the page offset and distinct pages map
// to distinct frames.
func TestTranslationInjectivity(t *testing.T) {
	s, _ := NewSpace(1<<22, 64)
	rng := rand.New(rand.NewSource(3))
	frames := map[uint64]uint64{}
	for i := 0; i < 200; i++ {
		v := uint64(rng.Intn(1<<20)) &^ uint64(PageMask)
		if err := s.EnsureMapped(v, PageSize); err != nil {
			t.Fatal(err)
		}
		p, _, err := s.Translate(v)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := frames[p]; ok && prev != v {
			t.Fatalf("pages %#x and %#x share frame %#x", prev, v, p)
		}
		frames[p] = v
	}
}

func TestSpaceByteAccess(t *testing.T) {
	s, _ := NewSpace(1<<20, 16)
	s.EnsureMapped(0x7000, 4096)
	if err := s.SetByteAt(0x7003, 0x5c); err != nil {
		t.Fatal(err)
	}
	b, err := s.ByteAt(0x7003)
	if err != nil || b != 0x5c {
		t.Errorf("byte = %#x, %v", b, err)
	}
	// Dirty bit set by byte writes.
	pte, _ := s.PT.Lookup(0x7000)
	if !pte.Dirty {
		t.Error("byte write did not dirty the page")
	}
	if _, err := s.ByteAt(0x999000); err == nil {
		t.Error("byte read of unmapped page accepted")
	}
	if err := s.SetByteAt(0x999000, 1); err == nil {
		t.Error("byte write of unmapped page accepted")
	}
}
