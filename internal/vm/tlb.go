package vm

// TLB is a software model of a translation lookaside buffer with the
// statistics that the paper's protection-scheme comparisons depend on.
// It supports the three operating modes of Sec 5.1:
//
//   - guarded pointers / single address space: one shared set of
//     translations, never flushed on a domain switch (ASID ignored);
//   - separate address spaces without ASIDs: the OS must Flush on every
//     protection-domain switch;
//   - separate address spaces with ASIDs: entries are matched on
//     (VPN, ASID) and survive switches, at the cost of losing in-cache
//     sharing (synonyms).
//
// The replacement policy is LRU over a fully associative array, which is
// what small hardware TLBs of the era implemented.
type TLB struct {
	entries []tlbEntry
	clock   uint64
	stats   TLBStats
	// gen increments whenever the entry array may have changed
	// (Insert, Invalidate, Flush). Space's one-entry translation
	// micro-cache validates against it so a cached (vpn → entry)
	// mapping is reused only while the backing entry is provably
	// untouched.
	gen uint64
}

type tlbEntry struct {
	vpn   uint64
	asid  uint16
	pte   PTE
	valid bool
	used  uint64
	// poisoned marks an entry corrupted outside the insert path
	// (CorruptEntry's soft-error model). Hardware TLBs carry parity per
	// entry; a hit on a poisoned entry raises a machine check instead of
	// silently translating with decayed bits.
	poisoned bool
}

// TLBStats counts the events the experiments report.
type TLBStats struct {
	Hits    uint64
	Misses  uint64
	Flushes uint64
	// FlushedEntries is the total number of valid entries destroyed by
	// flushes — the refill work a flush-based scheme imposes.
	FlushedEntries uint64
}

// GlobalASID is the identifier used when the TLB runs in single-
// address-space mode: all lookups and inserts share it.
const GlobalASID uint16 = 0

// NewTLB returns a TLB with the given number of entries.
func NewTLB(size int) *TLB {
	return &TLB{entries: make([]tlbEntry, size)}
}

// Size returns the entry count.
func (t *TLB) Size() int { return len(t.entries) }

// Lookup probes for the page containing vaddr under asid. It updates
// hit/miss statistics and LRU state.
func (t *TLB) Lookup(vaddr uint64, asid uint16) (PTE, bool) {
	pte, _, ok := t.lookupIdx(vaddr, asid)
	return pte, ok
}

// lookupIdx is Lookup returning the index of the hit entry, so the
// translation micro-cache can later touch the same entry without the
// associative scan.
func (t *TLB) lookupIdx(vaddr uint64, asid uint16) (PTE, int, bool) {
	vpn := vpnOf(vaddr)
	t.clock++
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn && e.asid == asid {
			e.used = t.clock
			t.stats.Hits++
			return e.pte, i, true
		}
	}
	t.stats.Misses++
	return PTE{}, 0, false
}

// touch replays the statistics and LRU effects of a Lookup hitting
// entries[i], without the scan. The caller (the translation
// micro-cache) guarantees — via gen — that entries[i] is exactly the
// entry a full Lookup would have hit, so hit counts and replacement
// decisions stay bit-identical to the unaccelerated path.
func (t *TLB) touch(i int) {
	t.clock++
	t.entries[i].used = t.clock
	t.stats.Hits++
}

// Insert installs a translation, evicting the LRU entry if full.
func (t *TLB) Insert(vaddr uint64, asid uint16, pte PTE) {
	vpn := vpnOf(vaddr)
	t.clock++
	t.gen++
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn && e.asid == asid {
			e.pte = pte
			e.used = t.clock
			e.poisoned = false // a full rewrite restores the entry's parity
			return
		}
		if !e.valid {
			victim = i
			oldest = 0
			continue
		}
		if e.used < oldest {
			victim, oldest = i, e.used
		}
	}
	t.entries[victim] = tlbEntry{vpn: vpn, asid: asid, pte: pte, valid: true, used: t.clock}
}

// Invalidate removes any entry for the page containing vaddr, under all
// ASIDs (the shootdown a revocation-by-unmap performs).
func (t *TLB) Invalidate(vaddr uint64) {
	t.gen++
	vpn := vpnOf(vaddr)
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].vpn == vpn {
			t.entries[i].valid = false
		}
	}
}

// Flush destroys every entry — the cost a no-ASID separate-address-space
// scheme pays on each protection-domain switch.
func (t *TLB) Flush() {
	t.gen++
	t.stats.Flushes++
	for i := range t.entries {
		if t.entries[i].valid {
			t.stats.FlushedEntries++
			t.entries[i].valid = false
		}
	}
}

// Live returns the number of valid entries.
func (t *TLB) Live() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}

// CorruptEntry models a soft error in TLB slot i: it XORs the stored
// VPN and frame with the given masks and marks the entry poisoned, as a
// particle strike would decay CAM/RAM bits underneath the entry's
// parity. It returns false (and does nothing) if the slot is empty or
// out of range — there is nothing to corrupt. The TLB generation is
// bumped so the owning Space's translation micro-cache cannot keep
// serving a pre-corruption copy of the entry.
//
// A poisoned entry that is hit reports a detected corruption (see
// Space.Translate); one that is evicted or rewritten first was masked.
func (t *TLB) CorruptEntry(i int, xorVPN, xorFrame uint64) bool {
	if i < 0 || i >= len(t.entries) || !t.entries[i].valid {
		return false
	}
	e := &t.entries[i]
	e.vpn ^= xorVPN
	e.pte.Frame ^= xorFrame
	e.poisoned = true
	t.gen++
	return true
}

// poisonedAt reports whether slot i is poisoned (hit-path parity check).
func (t *TLB) poisonedAt(i int) bool { return t.entries[i].poisoned }

// PoisonedEntries counts slots still carrying an undetected corruption
// — the latent faults a retirement scrub of the TLB would surface.
func (t *TLB) PoisonedEntries() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].poisoned {
			n++
		}
	}
	return n
}

// Stats returns a copy of the counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// ResetStats zeroes the counters (entries are preserved).
func (t *TLB) ResetStats() { t.stats = TLBStats{} }
