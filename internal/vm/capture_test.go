package vm

import (
	"testing"

	"repro/internal/word"
)

func captureSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace(1<<20, 16)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func containsPage(pages []uint64, page uint64) bool {
	for _, p := range pages {
		if p == page {
			return true
		}
	}
	return false
}

// TestDirtyObserveAndClear is the dirty-bit lifecycle regression: a
// store issued after a clearing capture pass must re-dirty its page even
// when the translation micro-cache's dirty hint for that page was warm
// at capture time. Before DirtyPages also dropped the hints, the store
// below hit the hint, skipped PT.SetDirty, and the page silently
// vanished from the next delta.
func TestDirtyObserveAndClear(t *testing.T) {
	s := captureSpace(t)
	const page = 0x40000
	if err := s.EnsureMapped(page, PageSize); err != nil {
		t.Fatal(err)
	}
	// Two stores: the first fills the TLB, the second fills the
	// micro-cache entry and warms its dirty hint.
	for i := 0; i < 2; i++ {
		if err := s.WriteWord(page+8, word.FromInt(7)); err != nil {
			t.Fatal(err)
		}
	}
	if d := s.DirtyPages(true); !containsPage(d, page) {
		t.Fatalf("first capture: dirty pages %v missing %#x", d, page)
	}
	if d := s.DirtyPages(true); len(d) != 0 {
		t.Fatalf("clearing pass left dirty pages %v", d)
	}
	// The store racing the next interval: with the stale hint this would
	// be dropped.
	if err := s.WriteWord(page+8, word.FromInt(9)); err != nil {
		t.Fatal(err)
	}
	if d := s.DirtyPages(true); !containsPage(d, page) {
		t.Fatalf("post-capture store dropped: dirty pages %v missing %#x", d, page)
	}
}

// TestDirtyPagesNonClearing checks the observe-only mode leaves the
// bits (and subsequent collections) intact.
func TestDirtyPagesNonClearing(t *testing.T) {
	s := captureSpace(t)
	const page = 0x9000
	if err := s.EnsureMapped(page, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteWord(page, word.FromInt(1)); err != nil {
		t.Fatal(err)
	}
	if d := s.DirtyPages(false); !containsPage(d, page) {
		t.Fatalf("observe pass: %v missing %#x", d, page)
	}
	if d := s.DirtyPages(true); !containsPage(d, page) {
		t.Fatalf("bits were cleared by the observe-only pass: %v", d)
	}
}

// TestCaptureTracking covers the mutations dirty bits cannot see: fresh
// mappings and backing-store writes.
func TestCaptureTracking(t *testing.T) {
	s := captureSpace(t)
	s.StartCaptureTracking()
	const pa, pb = 0x10000, 0x20000
	if err := s.EnsureMapped(pa, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.EnsureMapped(pb, PageSize); err != nil {
		t.Fatal(err)
	}
	fresh, _ := s.DrainCaptureTouched()
	if !containsPage(fresh, pa) || !containsPage(fresh, pb) {
		t.Fatalf("fresh mappings %v missing %#x/%#x", fresh, pa, pb)
	}

	// Swap-out mutates the backing store; swap-in is a fresh mapping.
	if err := s.SwapOut(pa); err != nil {
		t.Fatal(err)
	}
	fresh, touched := s.DrainCaptureTouched()
	if !containsPage(touched, pa) {
		t.Fatalf("swap-out not tracked: %v", touched)
	}
	if len(fresh) != 0 {
		t.Fatalf("unexpected fresh mappings %v", fresh)
	}
	// ZeroWords scrubbing a swapped page in place is a content change
	// with no resident dirty bit anywhere.
	if err := s.ZeroWords(pa, pa+64); err != nil {
		t.Fatal(err)
	}
	_, touched = s.DrainCaptureTouched()
	if !containsPage(touched, pa) {
		t.Fatalf("swapped-page scrub not tracked: %v", touched)
	}
	if err := s.SwapIn(pa); err != nil {
		t.Fatal(err)
	}
	fresh, _ = s.DrainCaptureTouched()
	if !containsPage(fresh, pa) {
		t.Fatalf("swap-in not tracked as fresh mapping: %v", fresh)
	}

	// A re-map after a free reuses a frame with zeroed contents and a
	// clean PTE — only the fresh-mapping set witnesses it.
	if _, err := s.UnmapRange(pb, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.EnsureMapped(pb, PageSize); err != nil {
		t.Fatal(err)
	}
	fresh, _ = s.DrainCaptureTouched()
	if !containsPage(fresh, pb) {
		t.Fatalf("re-map not tracked: %v", fresh)
	}

	words := make([]word.Word, PageSize/word.BytesPerWord)
	if err := s.RestoreSwapPage(0x30000, words); err != nil {
		t.Fatal(err)
	}
	_, touched = s.DrainCaptureTouched()
	if !containsPage(touched, 0x30000) {
		t.Fatalf("swap restore not tracked: %v", touched)
	}
}

// TestSwapPageAccessors exercises the per-page backing-store views.
func TestSwapPageAccessors(t *testing.T) {
	s := captureSpace(t)
	const page = 0x50000
	if err := s.EnsureMapped(page, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteWord(page+16, word.FromInt(42)); err != nil {
		t.Fatal(err)
	}
	if err := s.SwapOut(page); err != nil {
		t.Fatal(err)
	}
	if got := s.SwapPageList(); len(got) != 1 || got[0] != page {
		t.Fatalf("SwapPageList = %v", got)
	}
	buf, ok := s.SwapPage(page + 24) // any address within the page
	if !ok || buf[2].Int() != 42 {
		t.Fatalf("SwapPage = %v, %v", buf, ok)
	}
	if _, ok := s.SwapPage(0x99000); ok {
		t.Fatal("SwapPage of absent page reported ok")
	}
}
