package vm

import (
	"fmt"

	"repro/internal/telemetry"
	"repro/internal/word"
)

// This file adds the backing store under the paging layer. The paper
// assumes conventional paging beneath segmentation ("segmentation is
// often implemented on top of a paging system which is responsible for
// transferring fixed size pages", Sec 5.2); a single-address-space
// system pages exactly like any other — the swap is keyed by virtual
// page, and no per-process state exists.
//
// Swapped pages preserve their tag bits: capabilities survive a round
// trip through the backing store, which is essential — paging out a
// segment full of pointers must not launder or destroy them.

// SwapStats counts backing-store traffic.
type SwapStats struct {
	SwapOuts uint64
	SwapIns  uint64
}

// swapPage is one page of data+tags in the backing store.
type swapPage []word.Word

// EnsureSwap lazily creates the backing store.
func (s *Space) ensureSwap() {
	if s.swap == nil {
		s.swap = make(map[uint64]swapPage)
	}
}

// Swapped reports whether the page containing vaddr is in the backing
// store.
func (s *Space) Swapped(vaddr uint64) bool {
	_, ok := s.swap[vaddr&^uint64(PageMask)]
	return ok
}

// SwappedPages returns the number of pages in the backing store.
func (s *Space) SwappedPages() int { return len(s.swap) }

// SwapStatsSnapshot returns a copy of the swap counters.
func (s *Space) SwapStatsSnapshot() SwapStats { return s.swapStats }

// SwapOut writes the resident page containing vaddr to the backing
// store, unmaps it, shoots it from the TLB and releases its frame.
func (s *Space) SwapOut(vaddr uint64) error {
	page := vaddr &^ uint64(PageMask)
	pte, ok := s.PT.Lookup(page)
	if !ok {
		return fmt.Errorf("vm: swap-out of non-resident page %#x", page)
	}
	s.ensureSwap()
	buf := make(swapPage, PageSize/word.BytesPerWord)
	for i := range buf {
		w, err := s.Phys.ReadWord(pte.Frame + uint64(i)*word.BytesPerWord)
		if err != nil {
			return err
		}
		buf[i] = w
	}
	s.swap[page] = buf
	s.trackSwap(page)
	s.PT.Unmap(page)
	s.TLB.Invalidate(page)
	if err := s.Frames.Release(pte.Frame); err != nil {
		return err
	}
	s.swapStats.SwapOuts++
	if s.Tracer != nil && s.Tracer.Enabled(telemetry.EvSwapOut) {
		s.Tracer.Emit(telemetry.Event{Cycle: s.cycle(), Kind: telemetry.EvSwapOut,
			Thread: -1, Cluster: -1, Domain: -1, Addr: page})
	}
	return nil
}

// SwapIn restores the page containing vaddr from the backing store
// into a free frame. The caller must have ensured a frame is free
// (evicting another page if necessary).
func (s *Space) SwapIn(vaddr uint64) error {
	page := vaddr &^ uint64(PageMask)
	buf, ok := s.swap[page]
	if !ok {
		return fmt.Errorf("vm: swap-in of page %#x not in backing store", page)
	}
	frame, err := s.Frames.Alloc()
	if err != nil {
		return fmt.Errorf("vm: swap-in of %#x: %w", page, err)
	}
	for i, w := range buf {
		if err := s.Phys.WriteWord(frame+uint64(i)*word.BytesPerWord, w); err != nil {
			return err
		}
	}
	if err := s.PT.Map(page, frame); err != nil {
		return err
	}
	s.trackMap(page)
	delete(s.swap, page)
	s.swapStats.SwapIns++
	if s.Tracer != nil && s.Tracer.Enabled(telemetry.EvSwapIn) {
		s.Tracer.Emit(telemetry.Event{Cycle: s.cycle(), Kind: telemetry.EvSwapIn,
			Thread: -1, Cluster: -1, Domain: -1, Addr: page})
	}
	return nil
}

// DropSwapped discards any backing-store copy of the page containing
// vaddr (used when the segment owning it is freed).
func (s *Space) DropSwapped(vaddr uint64) {
	delete(s.swap, vaddr&^uint64(PageMask))
}

// Walk visits every valid translation in ascending virtual-page order
// is NOT guaranteed; fn receives the page base address and its PTE.
// Returning false stops the walk.
func (pt *PageTable) Walk(fn func(page uint64, pte PTE) bool) {
	pt.walkNode(pt.root, 0, 0, fn)
}

func (pt *PageTable) walkNode(n *ptNode, level int, prefix uint64, fn func(uint64, PTE) bool) bool {
	if n == nil {
		return true
	}
	if level == levels-1 {
		for i := range n.ptes {
			if n.ptes[i].Valid {
				vpn := prefix<<levelBits | uint64(i)
				if !fn(vpn<<PageShift, n.ptes[i]) {
					return false
				}
			}
		}
		return true
	}
	for i, child := range n.children {
		if child == nil {
			continue
		}
		if !pt.walkNode(child, level+1, prefix<<levelBits|uint64(i), fn) {
			return false
		}
	}
	return true
}

// ResidentPages returns the base addresses of all mapped pages.
func (s *Space) ResidentPages() []uint64 {
	var pages []uint64
	s.PT.Walk(func(page uint64, _ PTE) bool {
		pages = append(pages, page)
		return true
	})
	return pages
}

// ZeroWords zeroes the word range [lo, hi) wherever the words
// currently live: resident pages are written through physical memory,
// swapped pages are scrubbed in the backing store, and pages that were
// never materialized are already zero by definition (demand-zero).
func (s *Space) ZeroWords(lo, hi uint64) error {
	if hi <= lo {
		return nil
	}
	for page := lo &^ uint64(PageMask); page < hi; page += PageSize {
		plo, phi := page, page+PageSize
		if plo < lo {
			plo = lo
		}
		if phi > hi {
			phi = hi
		}
		if buf, ok := s.swap[page]; ok {
			for a := plo; a < phi; a += word.BytesPerWord {
				buf[(a-page)/word.BytesPerWord] = word.Word{}
			}
			s.trackSwap(page)
			continue
		}
		if _, ok := s.PT.Lookup(page); !ok {
			continue
		}
		for a := plo; a < phi; a += word.BytesPerWord {
			if err := s.WriteWord(a, word.Word{}); err != nil {
				return err
			}
		}
	}
	return nil
}

// SwapContents returns a copy of the backing store (page base → words)
// for checkpointing.
func (s *Space) SwapContents() map[uint64][]word.Word {
	out := make(map[uint64][]word.Word, len(s.swap))
	for page, buf := range s.swap {
		out[page] = append([]word.Word(nil), buf...)
	}
	return out
}

// RestoreSwapPage installs a page image directly into the backing
// store — the restore path for checkpointed swap state.
func (s *Space) RestoreSwapPage(page uint64, words []word.Word) error {
	if page&uint64(PageMask) != 0 {
		return fmt.Errorf("vm: swap restore of unaligned page %#x", page)
	}
	if len(words) != PageSize/word.BytesPerWord {
		return fmt.Errorf("vm: swap restore of %d words, want %d", len(words), PageSize/word.BytesPerWord)
	}
	s.ensureSwap()
	s.swap[page] = append(swapPage(nil), words...)
	s.trackSwap(page)
	return nil
}
