// Package vm implements the translation layer under guarded pointers:
// one single 54-bit virtual address space shared by every process, a
// radix page table mapping virtual pages to physical frames, and a TLB
// model with the statistics the paper's comparisons turn on (hits,
// misses, flushes, entry counts).
//
// Because protection lives in the pointers, this layer does *no* access
// checking at all — "only one level of address translation is required
// to perform a memory reference" (Abstract) and translation happens only
// on cache misses (Sec 3). The same TLB type, with its address-space
// identifier field, also serves the page-based baseline models of
// Sec 5.1.
package vm

import "fmt"

// Page geometry: 4KB pages over the 54-bit space, leaving a 42-bit
// virtual page number.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1

	// VPNBits is the width of the virtual page number.
	VPNBits = 54 - PageShift

	// Radix tree geometry: 3 levels of 14 bits each cover the 42-bit
	// VPN.
	levelBits = 14
	levels    = 3
	fanout    = 1 << levelBits
	levelMask = fanout - 1
)

// PTE is a page-table entry: the physical frame base address and
// bookkeeping bits. Guarded-pointer PTEs carry no protection bits — the
// pointer already said what is allowed.
type PTE struct {
	Frame      uint64 // physical base address of the frame
	Valid      bool
	Dirty      bool
	Referenced bool
}

// PageFaultError reports a reference to an unmapped virtual page. The
// kernel uses unmapping as the revocation/relocation hook of Sec 4.3:
// "all guarded pointers to a segment can be simultaneously invalidated
// by unmapping the segment's address space in the page table".
type PageFaultError struct {
	VAddr uint64
}

func (e *PageFaultError) Error() string {
	return fmt.Sprintf("vm: page fault at %#x", e.VAddr)
}

// PageTable is a three-level radix table over the 42-bit VPN space,
// lazily populated. It is shared by all processes in a guarded-pointer
// system ("all processes share a single virtual address space", Sec 2).
type PageTable struct {
	root    *ptNode
	entries int
	nodes   int
}

type ptNode struct {
	children [fanout]*ptNode // inner levels
	ptes     []PTE           // leaf level only
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{root: &ptNode{}, nodes: 1}
}

// vpnOf extracts the virtual page number of a 54-bit address.
func vpnOf(vaddr uint64) uint64 { return vaddr >> PageShift }

// slots decomposes a VPN into per-level indices, most significant
// first.
func slots(vpn uint64) [levels]int {
	var s [levels]int
	for i := levels - 1; i >= 0; i-- {
		s[i] = int(vpn & levelMask)
		vpn >>= levelBits
	}
	return s
}

// Map installs a translation from the page containing vaddr to the
// physical frame at frame (frame must be page aligned). Remapping an
// existing page overwrites it.
func (pt *PageTable) Map(vaddr, frame uint64) error {
	if frame&PageMask != 0 {
		return fmt.Errorf("vm: frame %#x not page aligned", frame)
	}
	n := pt.root
	s := slots(vpnOf(vaddr))
	for i := 0; i < levels-1; i++ {
		next := n.children[s[i]]
		if next == nil {
			next = &ptNode{}
			if i == levels-2 {
				next.ptes = make([]PTE, fanout)
			}
			n.children[s[i]] = next
			pt.nodes++
		}
		n = next
	}
	pte := &n.ptes[s[levels-1]]
	if !pte.Valid {
		pt.entries++
	}
	*pte = PTE{Frame: frame, Valid: true}
	return nil
}

// Unmap removes the translation for the page containing vaddr and
// reports whether one existed. Interior nodes are retained (real
// hardware tables do the same; reclaim is a separate sweep).
func (pt *PageTable) Unmap(vaddr uint64) bool {
	pte := pt.lookup(vaddr)
	if pte == nil || !pte.Valid {
		return false
	}
	*pte = PTE{}
	pt.entries--
	return true
}

// Lookup returns the PTE for the page containing vaddr. The second
// result reports whether a valid translation exists. WalkLength
// references (memory accesses a hardware walker would make) are always
// exactly the number of levels.
func (pt *PageTable) Lookup(vaddr uint64) (PTE, bool) {
	pte := pt.lookup(vaddr)
	if pte == nil || !pte.Valid {
		return PTE{}, false
	}
	pte.Referenced = true
	return *pte, true
}

// SetDirty marks the page containing vaddr dirty (called on stores).
func (pt *PageTable) SetDirty(vaddr uint64) {
	if pte := pt.lookup(vaddr); pte != nil && pte.Valid {
		pte.Dirty = true
	}
}

func (pt *PageTable) lookup(vaddr uint64) *PTE {
	n := pt.root
	s := slots(vpnOf(vaddr))
	for i := 0; i < levels-1; i++ {
		n = n.children[s[i]]
		if n == nil {
			return nil
		}
	}
	return &n.ptes[s[levels-1]]
}

// Entries returns the number of valid translations.
func (pt *PageTable) Entries() int { return pt.entries }

// WalkLength is the number of memory references a hardware walk costs.
func (pt *PageTable) WalkLength() int { return levels }

// ApproxBytes estimates the storage the table consumes, for the
// table-overhead comparisons of experiment E7. Inner nodes cost one
// word per slot actually used is hard to model; we charge the
// conventional full-node cost.
func (pt *PageTable) ApproxBytes() uint64 {
	return uint64(pt.nodes) * fanout * 8
}
