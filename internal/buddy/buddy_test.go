package buddy

import (
	"math/rand"
	"testing"
)

func TestCeilLog2(t *testing.T) {
	cases := []struct {
		n uint64
		k uint
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}, {1 << 40, 40}}
	for _, c := range cases {
		if got := CeilLog2(c.n); got != c.k {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.n, got, c.k)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 64, 4); err == nil {
		t.Error("order 64 accepted")
	}
	if _, err := New(0, 10, 12); err == nil {
		t.Error("minLog > logSize accepted")
	}
	if _, err := New(1, 10, 4); err == nil {
		t.Error("misaligned base accepted")
	}
}

func TestAllocAlignment(t *testing.T) {
	a, _ := New(1<<20, 20, 4)
	for _, k := range []uint{4, 6, 10, 15} {
		addr, err := a.Alloc(k)
		if err != nil {
			t.Fatalf("Alloc(2^%d): %v", k, err)
		}
		if addr&(1<<k-1) != 0 {
			t.Errorf("block of 2^%d at %#x not aligned on its length", k, addr)
		}
		if addr < 1<<20 || addr >= 1<<21 {
			t.Errorf("block %#x outside region", addr)
		}
	}
}

func TestAllocRoundsUpToMinLog(t *testing.T) {
	a, _ := New(0, 16, 6)
	p, _ := a.Alloc(0)
	q, _ := a.Alloc(0)
	if q-p != 64 && p-q != 64 {
		t.Errorf("tiny allocations %#x, %#x not spaced by min block 64", p, q)
	}
}

func TestExhaustion(t *testing.T) {
	a, _ := New(0, 10, 4) // 1KB region, 16B min
	var got []uint64
	for {
		addr, err := a.Alloc(4)
		if err != nil {
			break
		}
		got = append(got, addr)
	}
	if len(got) != 64 {
		t.Errorf("allocated %d 16-byte blocks from 1KB, want 64", len(got))
	}
	if a.FreeBytes() != 0 {
		t.Errorf("FreeBytes = %d after exhaustion", a.FreeBytes())
	}
	if a.Stats().FailedAllocs != 1 {
		t.Errorf("FailedAllocs = %d", a.Stats().FailedAllocs)
	}
}

func TestAllocTooLarge(t *testing.T) {
	a, _ := New(0, 10, 4)
	if _, err := a.Alloc(11); err == nil {
		t.Error("over-region allocation accepted")
	}
}

func TestFreeCoalesces(t *testing.T) {
	a, _ := New(0, 12, 4)
	var addrs []uint64
	for i := 0; i < 256; i++ { // exhaust with 16B blocks
		addr, err := a.Alloc(4)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	for _, addr := range addrs {
		if err := a.Free(addr); err != nil {
			t.Fatal(err)
		}
	}
	// After freeing everything, coalescing must restore one maximal
	// block.
	if k, ok := a.LargestFree(); !ok || k != 12 {
		t.Errorf("LargestFree = %d, %v; want 12", k, ok)
	}
	if a.ExternalFragmentation() != 0 {
		t.Errorf("ExternalFragmentation = %v after full free", a.ExternalFragmentation())
	}
	if a.Stats().Merges == 0 {
		t.Error("no merges recorded")
	}
}

func TestDoubleFreeAndBadFree(t *testing.T) {
	a, _ := New(0, 12, 4)
	addr, _ := a.Alloc(6)
	if err := a.Free(addr); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(addr); err == nil {
		t.Error("double free accepted")
	}
	if err := a.Free(0x123); err == nil {
		t.Error("free of never-allocated address accepted")
	}
}

func TestAllocBytesInternalFragmentation(t *testing.T) {
	a, _ := New(0, 20, 4)
	// Request 5 bytes -> granted 16 (minLog); request 1000 -> 1024.
	if _, k, err := a.AllocBytes(5); err != nil || k != 4 {
		t.Errorf("AllocBytes(5): k=%d err=%v, want k=4", k, err)
	}
	if _, k, err := a.AllocBytes(1000); err != nil || k != 10 {
		t.Errorf("AllocBytes(1000): k=%d err=%v, want k=10", k, err)
	}
	s := a.Stats()
	if s.RequestedBytes != 1005 || s.GrantedBytes != 16+1024 {
		t.Errorf("stats = %+v", s)
	}
	frag := s.InternalFragmentation()
	want := 1 - 1005.0/1040.0
	if frag < want-1e-9 || frag > want+1e-9 {
		t.Errorf("InternalFragmentation = %v, want %v", frag, want)
	}
	if _, k, err := a.AllocBytes(0); err != nil || k != 4 {
		t.Errorf("AllocBytes(0): k=%d err=%v", k, err)
	}
}

func TestExternalFragmentationSignal(t *testing.T) {
	a, _ := New(0, 12, 4)
	// Allocate all 16B blocks, free every other one: free space is
	// shattered, largest free block is 16B.
	var addrs []uint64
	for {
		addr, err := a.Alloc(4)
		if err != nil {
			break
		}
		addrs = append(addrs, addr)
	}
	for i := 0; i < len(addrs); i += 2 {
		a.Free(addrs[i])
	}
	if f := a.ExternalFragmentation(); f < 0.9 {
		t.Errorf("checkerboarded region fragmentation = %v, want > 0.9", f)
	}
	// A large allocation must fail even though half the region is free.
	if _, err := a.Alloc(11); err == nil {
		t.Error("2^11 alloc succeeded in checkerboarded region")
	}
}

func TestLiveBytesAccounting(t *testing.T) {
	a, _ := New(0, 16, 4)
	p, _ := a.Alloc(8)
	q, _ := a.Alloc(10)
	if a.Stats().LiveBytes != 256+1024 {
		t.Errorf("LiveBytes = %d", a.Stats().LiveBytes)
	}
	a.Free(p)
	a.Free(q)
	if a.Stats().LiveBytes != 0 {
		t.Errorf("LiveBytes = %d after frees", a.Stats().LiveBytes)
	}
}

// Property: a random alloc/free storm never hands out overlapping
// blocks, never loses bytes, and full teardown always coalesces back to
// one region-sized block.
func TestRandomStormInvariants(t *testing.T) {
	const regionLog = 16
	a, _ := New(1<<regionLog, regionLog, 4)
	rng := rand.New(rand.NewSource(42))
	type block struct {
		addr uint64
		k    uint
	}
	var live []block

	overlaps := func(x, y block) bool {
		return x.addr < y.addr+1<<y.k && y.addr < x.addr+1<<x.k
	}
	for step := 0; step < 20000; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			k := uint(rng.Intn(10)) + 4
			addr, err := a.Alloc(k)
			if err != nil {
				continue
			}
			nb := block{addr, k}
			for _, b := range live {
				if overlaps(nb, b) {
					t.Fatalf("block %+v overlaps live %+v", nb, b)
				}
			}
			live = append(live, nb)
		} else {
			i := rng.Intn(len(live))
			if err := a.Free(live[i].addr); err != nil {
				t.Fatalf("free of live block: %v", err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		var liveBytes uint64
		for _, b := range live {
			liveBytes += 1 << b.k
		}
		if a.FreeBytes()+liveBytes != 1<<regionLog {
			t.Fatalf("bytes lost: free %d + live %d != %d", a.FreeBytes(), liveBytes, 1<<regionLog)
		}
	}
	for _, b := range live {
		if err := a.Free(b.addr); err != nil {
			t.Fatal(err)
		}
	}
	if k, ok := a.LargestFree(); !ok || k != regionLog {
		t.Errorf("teardown left largest free 2^%d, want 2^%d", k, regionLog)
	}
}

func TestReserve(t *testing.T) {
	a, _ := New(0x1000, 12, 3) // [0x1000, 0x2000)
	if err := a.Reserve(0x1200, 9); err != nil {
		t.Fatal(err)
	}
	// The reserved range is not handed out again.
	seen := map[uint64]bool{}
	for {
		addr, err := a.Alloc(9)
		if err != nil {
			break
		}
		if addr >= 0x1200 && addr < 0x1400 {
			t.Fatalf("allocator handed out reserved space at %#x", addr)
		}
		seen[addr] = true
	}
	if len(seen) != 7 { // 8 × 512B blocks minus the reserved one
		t.Errorf("allocated %d blocks, want 7", len(seen))
	}
	// Freeing the reservation makes it allocatable again.
	if err := a.Free(0x1200); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(9); err != nil {
		t.Errorf("freed reservation not reusable: %v", err)
	}
}

func TestReserveValidation(t *testing.T) {
	a, _ := New(0x1000, 12, 4)
	if err := a.Reserve(0x1100, 3); err == nil {
		t.Error("below-minimum order accepted")
	}
	if err := a.Reserve(0x1000, 13); err == nil {
		t.Error("over-region order accepted")
	}
	if err := a.Reserve(0x1010, 6); err == nil {
		t.Error("misaligned reserve accepted")
	}
	if err := a.Reserve(0x8000, 6); err == nil {
		t.Error("out-of-region reserve accepted")
	}
	a.Reserve(0x1000, 12) // whole region
	if err := a.Reserve(0x1400, 8); err == nil {
		t.Error("reserve of allocated space accepted")
	}
}

func TestReserveThenCoalesce(t *testing.T) {
	a, _ := New(0, 14, 4)
	for _, r := range []struct {
		addr uint64
		k    uint
	}{{0x0, 6}, {0x1000, 8}, {0x2a0, 5}} {
		if err := a.Reserve(r.addr, r.k); err != nil {
			t.Fatalf("Reserve(%#x, %d): %v", r.addr, r.k, err)
		}
	}
	a.Free(0x0)
	a.Free(0x1000)
	a.Free(0x2a0)
	if k, ok := a.LargestFree(); !ok || k != 14 {
		t.Errorf("region did not coalesce after reserve+free: 2^%d", k)
	}
}
