// Package buddy implements the buddy-system allocator the paper
// prescribes for the single shared virtual address space: "A buddy
// system memory allocation scheme, which combines adjacent free segments
// into larger segments, can be used to reduce this fragmentation
// problem" (Sec 4.2).
//
// Guarded-pointer segments must be power-of-two sized and aligned on
// their length, which is exactly the block discipline of a buddy
// allocator, so every block this package hands out is directly usable as
// a segment. The allocator also keeps the fragmentation accounting that
// experiment E8 reports: internal fragmentation (requested vs granted
// bytes) and external fragmentation (how much of the free space is
// usable for a large request).
package buddy

import (
	"fmt"
	"sort"
)

// Allocator manages a power-of-two region of the virtual address space
// with the buddy discipline.
type Allocator struct {
	base    uint64
	logSize uint // region is 2^logSize bytes at base (base aligned)
	minLog  uint // smallest block handed out

	// free[k] holds base addresses of free blocks of size 2^k,
	// maintained as a sorted set for deterministic behaviour and O(log n)
	// buddy lookup.
	free map[uint][]uint64

	// allocated[addr] = logLen for live blocks, to validate frees.
	allocated map[uint64]uint

	stats Stats
}

// Stats aggregates the allocator's fragmentation accounting.
type Stats struct {
	// RequestedBytes is the total bytes callers asked for via AllocBytes
	// (exact request sizes).
	RequestedBytes uint64
	// GrantedBytes is the total bytes actually reserved (power-of-two
	// rounded). GrantedBytes − RequestedBytes is internal fragmentation.
	GrantedBytes uint64
	// LiveBytes is granted minus freed.
	LiveBytes uint64
	// Allocs and Frees count operations; Splits and Merges count buddy
	// splits and coalesces.
	Allocs, Frees, Splits, Merges uint64
	// FailedAllocs counts allocation failures (no block large enough).
	FailedAllocs uint64
}

// New returns an allocator over the 2^logSize-byte region at base. base
// must be aligned to the region size; minLog is the smallest block order
// ever handed out (requests below it are rounded up to it).
func New(base uint64, logSize, minLog uint) (*Allocator, error) {
	if logSize > 63 {
		return nil, fmt.Errorf("buddy: region order %d too large", logSize)
	}
	if minLog > logSize {
		return nil, fmt.Errorf("buddy: min order %d exceeds region order %d", minLog, logSize)
	}
	if base&(1<<logSize-1) != 0 {
		return nil, fmt.Errorf("buddy: base %#x not aligned to 2^%d", base, logSize)
	}
	a := &Allocator{
		base:      base,
		logSize:   logSize,
		minLog:    minLog,
		free:      map[uint][]uint64{logSize: {base}},
		allocated: make(map[uint64]uint),
	}
	return a, nil
}

// MinLog returns the smallest block order the allocator hands out.
func (a *Allocator) MinLog() uint { return a.minLog }

// RegionSize returns the total managed bytes.
func (a *Allocator) RegionSize() uint64 { return 1 << a.logSize }

// Alloc reserves a block of exactly 2^logLen bytes, aligned on its
// length, and returns its base address.
func (a *Allocator) Alloc(logLen uint) (uint64, error) {
	if logLen < a.minLog {
		logLen = a.minLog
	}
	if logLen > a.logSize {
		a.stats.FailedAllocs++
		return 0, fmt.Errorf("buddy: 2^%d exceeds region 2^%d", logLen, a.logSize)
	}
	// Find the smallest free block of order >= logLen.
	k := logLen
	for k <= a.logSize && len(a.free[k]) == 0 {
		k++
	}
	if k > a.logSize {
		a.stats.FailedAllocs++
		return 0, fmt.Errorf("buddy: no free block of 2^%d bytes", logLen)
	}
	addr := a.popFree(k)
	// Split down to the requested order, returning the upper halves.
	for k > logLen {
		k--
		a.pushFree(k, addr+1<<k)
		a.stats.Splits++
	}
	a.allocated[addr] = logLen
	a.stats.Allocs++
	a.stats.GrantedBytes += 1 << logLen
	a.stats.LiveBytes += 1 << logLen
	return addr, nil
}

// AllocBytes reserves at least n bytes, rounding the request up to the
// next power of two (the internal-fragmentation cost of Sec 4.2, which
// the stats record). It returns the block base and the granted order.
func (a *Allocator) AllocBytes(n uint64) (addr uint64, logLen uint, err error) {
	if n == 0 {
		n = 1
	}
	logLen = CeilLog2(n)
	addr, err = a.Alloc(logLen)
	if err != nil {
		return 0, 0, err
	}
	if logLen < a.minLog {
		logLen = a.minLog
	}
	a.stats.RequestedBytes += n
	return addr, logLen, nil
}

// Free returns the block at addr to the allocator, coalescing with its
// buddy repeatedly while the buddy is free.
func (a *Allocator) Free(addr uint64) error {
	logLen, ok := a.allocated[addr]
	if !ok {
		return fmt.Errorf("buddy: free of unallocated address %#x", addr)
	}
	delete(a.allocated, addr)
	a.stats.Frees++
	a.stats.LiveBytes -= 1 << logLen

	k := logLen
	for k < a.logSize {
		buddy := a.buddyOf(addr, k)
		if !a.removeFree(k, buddy) {
			break
		}
		a.stats.Merges++
		if buddy < addr {
			addr = buddy
		}
		k++
	}
	a.pushFree(k, addr)
	return nil
}

// buddyOf returns the address of the buddy of the 2^k block at addr.
func (a *Allocator) buddyOf(addr uint64, k uint) uint64 {
	return a.base + ((addr - a.base) ^ (1 << k))
}

// Stats returns a copy of the current accounting.
func (a *Allocator) Stats() Stats { return a.stats }

// FreeBytes returns the total bytes currently free.
func (a *Allocator) FreeBytes() uint64 {
	var total uint64
	for k, blocks := range a.free {
		total += uint64(len(blocks)) << k
	}
	return total
}

// LargestFree returns the order of the largest free block, and ok=false
// if nothing is free.
func (a *Allocator) LargestFree() (uint, bool) {
	for k := int(a.logSize); k >= int(a.minLog); k-- {
		if len(a.free[uint(k)]) > 0 {
			return uint(k), true
		}
	}
	return 0, false
}

// ExternalFragmentation returns 1 − largestFreeBlock/freeBytes: 0 when
// all free space is one block, approaching 1 as the free space shatters
// into small unusable pieces. Returns 0 when nothing is free.
func (a *Allocator) ExternalFragmentation() float64 {
	free := a.FreeBytes()
	if free == 0 {
		return 0
	}
	k, ok := a.LargestFree()
	if !ok {
		return 0
	}
	return 1 - float64(uint64(1)<<k)/float64(free)
}

// InternalFragmentation returns 1 − requested/granted over the lifetime
// of the allocator: the waste from power-of-two rounding. Returns 0 if
// no sized requests have been made.
func (s Stats) InternalFragmentation() float64 {
	if s.GrantedBytes == 0 || s.RequestedBytes == 0 {
		return 0
	}
	return 1 - float64(s.RequestedBytes)/float64(s.GrantedBytes)
}

// --- free-list maintenance -------------------------------------------

func (a *Allocator) pushFree(k uint, addr uint64) {
	list := a.free[k]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= addr })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = addr
	a.free[k] = list
}

func (a *Allocator) popFree(k uint) uint64 {
	list := a.free[k]
	addr := list[0]
	a.free[k] = list[1:]
	return addr
}

func (a *Allocator) removeFree(k uint, addr uint64) bool {
	list := a.free[k]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= addr })
	if i >= len(list) || list[i] != addr {
		return false
	}
	a.free[k] = append(list[:i], list[i+1:]...)
	return true
}

// CeilLog2 returns the smallest k with 2^k >= n (n > 0).
func CeilLog2(n uint64) uint {
	k := uint(0)
	for uint64(1)<<k < n {
		k++
	}
	return k
}

// Reserve carves the specific block [addr, addr+2^logLen) out of the
// free space, splitting larger free blocks as needed. It is the
// allocator's restore path: checkpointed segment layouts are rebuilt
// block by block. The block must be properly aligned and entirely
// free.
func (a *Allocator) Reserve(addr uint64, logLen uint) error {
	if logLen < a.minLog {
		return fmt.Errorf("buddy: reserve order 2^%d below minimum 2^%d", logLen, a.minLog)
	}
	if logLen > a.logSize {
		return fmt.Errorf("buddy: reserve order 2^%d exceeds region", logLen)
	}
	if addr&(1<<logLen-1) != 0 {
		return fmt.Errorf("buddy: reserve of %#x not aligned to 2^%d", addr, logLen)
	}
	if addr < a.base || addr+1<<logLen > a.base+1<<a.logSize {
		return fmt.Errorf("buddy: reserve of %#x outside region", addr)
	}
	// Find the free block that contains the range.
	k := logLen
	for ; k <= a.logSize; k++ {
		candidate := a.base + (addr-a.base)&^(1<<k-1)
		if a.removeFree(k, candidate) {
			// Split down, keeping the half containing addr.
			cur := candidate
			for k > logLen {
				k--
				if addr&(1<<k) != 0 {
					a.pushFree(k, cur)
					cur += 1 << k
				} else {
					a.pushFree(k, cur+1<<k)
				}
				a.stats.Splits++
			}
			a.allocated[addr] = logLen
			a.stats.Allocs++
			a.stats.GrantedBytes += 1 << logLen
			a.stats.LiveBytes += 1 << logLen
			return nil
		}
	}
	return fmt.Errorf("buddy: range at %#x (2^%d) not free", addr, logLen)
}
