package experiments

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/word"
	"repro/internal/workload"
)

func init() {
	register("E6", "Sec 3 claim — zero-cost protection-domain switching under interleaving", runE6)
}

// runE6 measures the paper's central performance claim two ways.
//
// Trace-driven: the Sec 5 scheme models consume identical cycle-by-
// cycle interleavings of 1..16 protection domains; guarded pointers
// must stay flat while flush-based schemes degrade with domain count.
//
// Machine-level: the actual simulator runs multi-domain thread sets
// under the guarded scheme and under the flush-on-switch cost models,
// on the same programs.
func runE6() (string, error) {
	var b strings.Builder

	// --- trace-driven sweep ------------------------------------------
	costs := baseline.DefaultCosts()
	domainCounts := []int{1, 2, 4, 8, 16}
	tbl := stats.NewTable("Cycles per reference vs interleaved domain count (trace model, quantum = 1 ref)",
		append([]string{"scheme"}, colsFor(domainCounts)...)...)
	for _, m := range baseline.All(costs) {
		row := []interface{}{m.Name()}
		for _, d := range domainCounts {
			tr := workload.Interleaved(d, 4000/d, 1, 2, 1<<30)
			row = append(row, m.Run(tr).CPR())
		}
		tbl.AddRow(row...)
	}
	b.WriteString(tbl.String())

	// --- switch-granularity sweep --------------------------------------
	// The flush-based scheme amortizes its per-switch cost over the
	// quantum: the crossover locates the granularity below which only
	// guarded pointers can interleave.
	qt := stats.NewTable("\nCycles/ref vs switch quantum (8 domains; flush cost amortizes with quantum)",
		append([]string{"scheme"}, "q=1", "q=4", "q=16", "q=64", "q=256")...)
	for _, m := range []baseline.Model{
		baseline.NewGuarded(costs), baseline.NewPageNoASID(costs),
	} {
		row := []interface{}{m.Name()}
		for _, q := range []int{1, 4, 16, 64, 256} {
			tr := workload.Interleaved(8, 4096/(8*q), q, 2, 1<<30)
			row = append(row, m.Run(tr).CPR())
		}
		qt.AddRow(row...)
	}
	b.WriteString(qt.String())

	// --- machine-level ------------------------------------------------
	mt := stats.NewTable("\nMachine-level: 4 threads, 4 domains, 1 cluster (identical programs)",
		"scheme", "total cycles", "stall cycles", "TLB flushes", "cache flush lines")
	for _, scheme := range []machine.Scheme{machine.SchemeGuarded, machine.SchemeFlushTLB, machine.SchemeFlushAll} {
		st, tlbFlushes, err := runInterleavedMachine(scheme)
		if err != nil {
			return "", err
		}
		mt.AddRow(scheme.String(), st.Cycles, st.StallCycles, tlbFlushes, "-")
	}
	b.WriteString(mt.String())
	b.WriteString("\nguarded pointers switch domains every issue slot for free: no stalls, no flushes, no per-thread\ntranslation state — the property that lets the M-Machine interleave 16 user threads cycle-by-cycle\n")
	return b.String(), nil
}

func colsFor(ds []int) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = fmt.Sprintf("%dd", d)
	}
	return out
}

func runInterleavedMachine(scheme machine.Scheme) (machine.Stats, uint64, error) {
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 4
	cfg.PhysBytes = 4 << 20
	cfg.Scheme = scheme
	k, err := kernel.New(cfg)
	if err != nil {
		return machine.Stats{}, 0, err
	}
	prog, err := asm.Assemble(`
		ldi r3, 400
	loop:
		ld r2, r1, 0
		ld r2, r1, 8
		ld r2, r1, 16
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	if err != nil {
		return machine.Stats{}, 0, err
	}
	for d := 0; d < 4; d++ {
		ip, err := k.LoadProgram(prog, false)
		if err != nil {
			return machine.Stats{}, 0, err
		}
		seg, err := k.AllocSegment(4096)
		if err != nil {
			return machine.Stats{}, 0, err
		}
		if _, err := k.Spawn(k.NewDomain(), ip, map[int]word.Word{1: seg.Word()}); err != nil {
			return machine.Stats{}, 0, err
		}
	}
	k.Run(10_000_000)
	for _, t := range k.M.Threads() {
		if t.State != machine.Halted {
			return machine.Stats{}, 0, fmt.Errorf("thread %d: %v %v", t.ID, t.State, t.Fault)
		}
	}
	return k.M.Stats(), k.M.Space.TLB.Stats().Flushes, nil
}
