package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/stats"
	"repro/internal/vm"
)

func init() {
	register("E5", "Fig. 5 — MAP memory system: 4-banked cache throughput and interleaving", runE5)
}

// runE5 animates the memory system of Fig. 5: four request streams (one
// per cluster) against the 4-bank virtually-addressed cache. It
// measures accepted references per cycle as a function of the address
// stride across the streams — the "up to four memory requests during
// each cycle" claim — and then ablates the bank-interleave granularity.
func runE5() (string, error) {
	var b strings.Builder

	tbl := stats.NewTable("Warm-cache throughput, 4 concurrent streams (M-Machine geometry: 4 banks, 32B lines)",
		"stream layout", "refs/cycle", "bank conflict cycles")
	type layout struct {
		name string
		// addr returns the address stream s references at step i.
		addr func(s, i uint64) uint64
	}
	layouts := []layout{
		// Each stream walks consecutive lines starting on its own bank:
		// perfect rotation, no conflicts.
		{"staggered lines (stream s starts at line s)", func(s, i uint64) uint64 {
			return (s+4*i)%512*32 + s*0 // stays within 16KB
		}},
		// All streams hit the same bank every cycle: stride of
		// banks×line bytes.
		{"same-bank stride 128B", func(s, i uint64) uint64 {
			return s*128*16 + i%16*128
		}},
		// Random-ish word addresses.
		{"hashed (uniform banks)", func(s, i uint64) uint64 {
			x := (s*2654435761 + i*40503) % 2048
			return x * 8
		}},
	}
	for _, l := range layouts {
		rps, conflicts, err := streamThroughput(l.addr)
		if err != nil {
			return "", err
		}
		tbl.AddRow(l.name, rps, conflicts)
	}
	b.WriteString(tbl.String())

	// Interleave-granularity ablation (DESIGN.md §5): the interleave
	// unit equals the line size in this model.
	ab := stats.NewTable("\nAblation: bank-interleave granularity (same-workload staggered streams)",
		"interleave unit", "refs/cycle", "bank conflict cycles")
	for _, lineBytes := range []int{8, 32, 256} {
		cfg := cache.Config{Banks: 4, Sets: 512, Ways: 2, LineBytes: lineBytes,
			HitLatency: 1, MissPenalty: 10}
		rps, conflicts, err := throughputWithConfig(cfg, func(s, i uint64) uint64 {
			return (s + 4*i) % 512 * uint64(lineBytes)
		})
		if err != nil {
			return "", err
		}
		ab.AddRow(fmt.Sprintf("%dB (%s)", lineBytes, interleaveName(lineBytes)), rps, conflicts)
	}
	b.WriteString(ab.String())
	b.WriteString("\nthe banked virtual cache accepts 4 refs/cycle when streams rotate banks; a single-ported\nprotection table (PLB/TLB per access) would have to be replicated 4x to keep up (Sec 3, Sec 5.1)\n")
	return b.String(), nil
}

func interleaveName(lineBytes int) string {
	switch lineBytes {
	case 8:
		return "word interleave"
	case 32:
		return "line interleave"
	default:
		return "coarse interleave"
	}
}

func streamThroughput(addr func(s, i uint64) uint64) (float64, uint64, error) {
	return throughputWithConfig(cache.MMachine(), addr)
}

// throughputWithConfig warms the cache and then issues 4 streams, one
// request per stream per cycle, measuring sustained acceptance.
func throughputWithConfig(cfg cache.Config, addr func(s, i uint64) uint64) (float64, uint64, error) {
	space, err := vm.NewSpace(4<<20, 64)
	if err != nil {
		return 0, 0, err
	}
	if err := space.EnsureMapped(0, 1<<20); err != nil {
		return 0, 0, err
	}
	c, err := cache.New(space, cfg)
	if err != nil {
		return 0, 0, err
	}
	const steps = 2000
	// Warm pass.
	var now uint64
	for i := uint64(0); i < steps; i++ {
		for s := uint64(0); s < 4; s++ {
			done, _, err := c.Access(addr(s, i), false, now)
			if err != nil {
				return 0, 0, err
			}
			if done > now {
				now = done
			}
		}
	}
	c.ResetStats()
	// Measured pass: each stream issues one reference per cycle; a
	// stream stalls (skips issue) while its previous reference is
	// outstanding.
	start := now + 10
	ready := [4]uint64{start, start, start, start}
	idx := [4]uint64{}
	refs := 0
	for cycle := start; cycle < start+steps; cycle++ {
		for s := uint64(0); s < 4; s++ {
			if ready[s] > cycle {
				continue
			}
			done, _, err := c.Access(addr(s, idx[s]), false, cycle)
			if err != nil {
				return 0, 0, err
			}
			idx[s]++
			refs++
			ready[s] = done
		}
	}
	st := c.Stats()
	return float64(refs) / float64(steps), st.ConflictCycles, nil
}
