package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("E18", "Sec 4.2 — sparse software capabilities vs the tag bit", runE18)
}

// runE18 quantifies the paper's opportunity-cost observation: systems
// like Amoeba protect objects by hiding software capabilities in a
// huge sparse address space, "a strategy which becomes less attractive
// if the virtual address space shrinks by a factor of 1000" (64 → 54
// bits is exactly 2^10 = 1024×). A Monte-Carlo guessing attack
// measures the forgery probability at each width; the tag bit is then
// shown to make the question moot.
func runE18() (string, error) {
	var b strings.Builder
	const objects = 1 << 26 // 64M live objects hidden in the space
	const trials = 4_000_000

	tbl := stats.NewTable(
		fmt.Sprintf("Forging a sparse capability: %d objects hidden in a 2^s space (%.0e random guesses)",
			objects, float64(trials)),
		"address bits s", "analytic P[hit]/guess", "measured hits", "expected guesses to forge")
	rng := workload.NewRNG(0xa0eba)
	for _, bits := range []uint{44, 54, 64} {
		// Place objects pseudo-randomly (keyed hash stands in for the
		// object table: an address is valid iff hash(addr) < density).
		space := uint64(1)<<(bits-1) + (uint64(1)<<(bits-1) - 1) // 2^bits-1 without overflow at 64
		density := float64(objects) / float64(space)
		hits := 0
		for i := 0; i < trials; i++ {
			guess := rng.Uint64() & space
			// keyed membership: deterministic, uniform density
			h := (guess*0x9e3779b97f4a7c15 ^ 0xda7a) * 0x2545f4914f6cdd1d
			if float64(h)/float64(^uint64(0)) < density {
				hits++
			}
		}
		expect := float64(space) / float64(objects)
		tbl.AddRow(fmt.Sprintf("%d", bits),
			fmt.Sprintf("%.2e", density),
			hits,
			fmt.Sprintf("%.2e", expect))
	}
	b.WriteString(tbl.String())
	fmt.Fprintf(&b, "\nshrinking 64 → 54 bits costs sparse schemes a factor of %d in forgery resistance (paper: \"a factor of 1000\")\n", 1<<10)

	// The tag bit ends the arms race: a user-mode forger cannot
	// materialize ANY tagged word, so even the exact bit image of a
	// valid capability is useless. Exhaustively check that every
	// pointer-typed operation rejects untagged words.
	mk, err := core.Make(core.PermReadWrite, 12, 0x42000)
	if err != nil {
		return "", err
	}
	img := mk.Word().Untag()
	rejections := 0
	if _, err := core.Decode(img); err != nil {
		rejections++
	}
	if _, err := core.CheckLoad(img, 8); err != nil {
		rejections++
	}
	if _, err := core.CheckStore(img, 8); err != nil {
		rejections++
	}
	if _, err := core.SetPtr(img, false); err != nil {
		rejections++
	}
	fmt.Fprintf(&b, "guarded pointers: the exact 64-bit image of a live capability is rejected by %d/4 pointer\noperations (tag absent); forgery probability is 0, independent of address-space size —\nSec 4.2: \"this particular use of a sparse virtual address space can be replaced by the\ncapability mechanism provided by guarded pointers\"\n", rejections)
	return b.String(), nil
}
