package experiments

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/word"
)

func init() {
	register("E21", "Sec 6 claim — software context switching above the hardware thread limit", runE21)
}

// runE21 measures a full software context switch between two
// coroutines sharing one hardware thread: save the live registers and
// resume point to a context segment, load the other context, jump.
// "Guarded pointers concentrate process state in general purpose
// registers instead of auxiliary or special memory, reducing process
// state, and facilitating fast context switching" (Sec 6) — there is
// literally nothing else to save.
//
// The comparison rows add what a conventional scheme pays on top of
// the same register traffic: installing the new address space and
// refilling the flushed TLB.
func runE21() (string, error) {
	perYield, err := measure(func(k *kernel.Kernel, iters int64) (*machine.Thread, error) {
		return buildCoroutines(k, iters)
	})
	if err != nil {
		return "", err
	}
	empty, err := measure(func(k *kernel.Kernel, iters int64) (*machine.Thread, error) {
		src := fmt.Sprintf("ldi r2, %d\nloop: subi r2, r2, 1\nbnez r2, loop\nhalt", iters)
		ip, err := loadSrc(k, src)
		if err != nil {
			return nil, err
		}
		return k.Spawn(1, ip, nil)
	})
	if err != nil {
		return "", err
	}
	// Each measured iteration is a full round trip A→B→A: two context
	// switches.
	sw := (perYield - empty) / 2

	costs := baseline.DefaultCosts()
	// A flushed 64-entry TLB refills on demand; charge a conservative
	// working set of 8 pages re-walked after each switch.
	refill := float64(8 * costs.WalkRefs * costs.CacheMissMem)

	tbl := stats.NewTable("Software context switch between protection domains (one hardware thread)",
		"component", "cycles")
	tbl.AddRow("guarded pointers: save/restore live regs + resume IP (measured per switch)", sw)
	tbl.AddRow("+ page-table install, conventional scheme (DefaultCosts)", float64(costs.SwitchHeavy))
	tbl.AddRow("+ TLB refill after flush, 8-page working set", refill)
	tbl.AddRow("conventional total", sw+float64(costs.SwitchHeavy)+refill)
	return tbl.String() + fmt.Sprintf(
		"\nthe guarded-pointer switch is pure register traffic (%.0f cycles); conventional schemes pay\n%.1fx that to move protection state the guarded machine simply does not have (Sec 6)\n",
		sw, (sw+float64(costs.SwitchHeavy)+refill)/sw), nil
}

// buildCoroutines wires two coroutines ping-ponging through a software
// yield routine. Context layout (one 64B segment each): [0] resume
// execute pointer, [8..32] saved r2..r5. Register convention: r10 =
// current context, r11 = other context, r15 = yield routine pointer.
func buildCoroutines(k *kernel.Kernel, iters int64) (*machine.Thread, error) {
	src := fmt.Sprintf(`
		; bootstrap: initialize coroutine B's context, then run A.
		movip r12
		leab  r12, r12, r0
		ldi   r13, =bstart
		lea   r13, r12, r13     ; execute pointer to B's entry
		st    r11, 0, r13       ; ctxB.resume = bstart
		ldi   r13, =yield
		lea   r15, r12, r13     ; r15 = yield routine
		ldi   r2, %d            ; A's counter (saved across switches)
	astart:
		subi  r2, r2, 1
		beqz  r2, done
		jmpl  r14, r15          ; yield to B
		br    astart
	bstart:
		jmpl  r14, r15          ; B immediately yields back
		br    bstart
	done:
		halt

	yield:
		; save current context: resume IP (the caller's r14) + r2..r5
		st    r10, 0, r14
		st    r10, 8, r2
		st    r10, 16, r3
		st    r10, 24, r4
		st    r10, 32, r5
		; swap current/other
		mov   r12, r10
		mov   r10, r11
		mov   r11, r12
		; load the other context and resume it
		ld    r2, r10, 8
		ld    r3, r10, 16
		ld    r4, r10, 24
		ld    r5, r10, 32
		ld    r13, r10, 0
		jmp   r13
	`, iters)
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		return nil, err
	}
	ctxA, err := k.AllocSegment(64)
	if err != nil {
		return nil, err
	}
	ctxB, err := k.AllocSegment(64)
	if err != nil {
		return nil, err
	}
	return k.Spawn(1, ip, map[int]word.Word{10: ctxA.Word(), 11: ctxB.Word()})
}
