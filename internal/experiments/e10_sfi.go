package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/word"
	"repro/internal/workload"
)

func init() {
	register("E10", "Sec 5.4 claim — software fault isolation pays on every reference", runE10)
	register("E11", "Sec 2.2 claim — segmentation's redundant adds vs pointer increment", runE11)
}

// runE10 measures sandboxing overhead both trace-driven (the Sec 5.4
// model) and on the simulator: the same array-reduction loop run
// natively under guarded pointers and with the SFI check sequence
// (mask-and-or on the address) inserted before every load.
func runE10() (string, error) {
	var b strings.Builder

	// Trace-driven, varying memory density.
	costs := baseline.DefaultCosts()
	tbl := stats.NewTable("Trace model: cycles/ref, guarded vs SFI",
		"workload", "guarded", "sfi", "overhead")
	workloads := []struct {
		name string
		tr   *workload.Trace
	}{
		{"array sweep 64KB", workload.ArraySweep(0, 1<<30, 8192, 8, false)},
		{"pointer chase 16KB", workload.PointerChase(workload.NewRNG(3), 0, 1<<30, 16<<10, 8192)},
	}
	for _, w := range workloads {
		g := baseline.NewGuarded(costs).Run(w.tr)
		s := baseline.NewSFI(costs).Run(w.tr)
		tbl.AddRow(w.name, g.CPR(), s.CPR(), stats.Ratio(float64(s.Cycles), float64(g.Cycles)))
	}
	b.WriteString(tbl.String())

	// Machine-level: real instruction streams.
	native := `
		ldi r3, 512
		ldi r4, 0
	loop:
		ld   r5, r1, 0
		add  r4, r4, r5
		leai r1, r1, 8
		subi r3, r3, 1
		bnez r3, loop
		halt
	`
	// SFI variant: two inserted check instructions (mask, re-base)
	// before the load, modelled on Wahbe et al.'s sandboxing sequence.
	// The operands keep the program semantics identical.
	sfi := `
		ldi r3, 512
		ldi r4, 0
	loop:
		and  r6, r7, r7   ; sandbox: mask address into fault domain
		or   r6, r6, r8   ; sandbox: set domain bits
		ld   r5, r1, 0
		add  r4, r4, r5
		leai r1, r1, 8
		subi r3, r3, 1
		bnez r3, loop
		halt
	`
	nCycles, nInstr, err := runLoop(native)
	if err != nil {
		return "", err
	}
	sCycles, sInstr, err := runLoop(sfi)
	if err != nil {
		return "", err
	}
	mt := stats.NewTable("\nMachine-level: 512-element array reduction",
		"variant", "instructions", "cycles", "overhead")
	mt.AddRow("guarded pointers (checks in hardware)", nInstr, nCycles, "1.00x")
	mt.AddRow("SFI (2 check instrs per reference)", sInstr, sCycles,
		stats.Ratio(float64(sCycles), float64(nCycles)))
	b.WriteString(mt.String())
	b.WriteString("\nSFI burns issue slots on every reference even when it never faults; guarded-pointer checks\nrun in parallel with the access and cost zero issue slots (Sec 5.4)\n")
	return b.String(), nil
}

// runE11 reproduces the Sec 2.2 loop example: with segmentation the
// hardware re-adds segment base + offset on every reference (modelled
// as an explicit add, since that is work the datapath must do), while a
// guarded pointer is incremented once per element.
func runE11() (string, error) {
	// for (i = 0; i < N; i++) a[i] = b[i];
	guarded := `
		ldi r3, 512
	loop:
		ld   r5, r1, 0
		st   r2, 0, r5
		leai r1, r1, 8
		leai r2, r2, 8
		subi r3, r3, 1
		bnez r3, loop
		halt
	`
	// Segmentation model: addresses are (segment, offset) pairs; each
	// reference recomputes base+offset — one extra add per reference,
	// the "many redundant adds" of Sec 2.2.
	segmented := `
		ldi r3, 512
		ldi r4, 0         ; i*8
	loop:
		leab r5, r1, r4   ; segmentation hw: base(b) + offset
		ld   r6, r5, 0
		leab r5, r2, r4   ; segmentation hw: base(a) + offset
		st   r5, 0, r6
		addi r4, r4, 8
		subi r3, r3, 1
		bnez r3, loop
		halt
	`
	gC, gI, err := runCopyLoop(guarded)
	if err != nil {
		return "", err
	}
	sC, sI, err := runCopyLoop(segmented)
	if err != nil {
		return "", err
	}
	tbl := stats.NewTable("512-element copy loop: a[i] = b[i] (Sec 2.2)",
		"addressing", "instructions", "cycles", "cycles/element")
	tbl.AddRow("guarded pointer increment", gI, gC, float64(gC)/512)
	tbl.AddRow("segment base + offset each ref", sI, sC, float64(sC)/512)
	return tbl.String() + "\nguarded pointers expose the address calculation to software once per element;\nsegmentation hardware repeats the base add on every reference\n", nil
}

func runLoop(src string) (cycles, instr uint64, err error) {
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	cfg.PhysBytes = 4 << 20
	k, err := kernel.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	ip, err := loadSrc(k, src)
	if err != nil {
		return 0, 0, err
	}
	seg, err := k.AllocSegment(8192)
	if err != nil {
		return 0, 0, err
	}
	mask := word.FromUint(0x0000ffffffffffff)
	th, err := k.Spawn(1, ip, map[int]word.Word{
		1: seg.Word(), 7: word.FromUint(0x1234), 8: mask,
	})
	if err != nil {
		return 0, 0, err
	}
	k.Run(10_000_000)
	if th.State != machine.Halted {
		return 0, 0, fmt.Errorf("thread: %v %v", th.State, th.Fault)
	}
	return k.M.Stats().Cycles, k.M.Stats().Instructions, nil
}

func runCopyLoop(src string) (cycles, instr uint64, err error) {
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	cfg.PhysBytes = 4 << 20
	k, err := kernel.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	ip, err := loadSrc(k, src)
	if err != nil {
		return 0, 0, err
	}
	bSeg, err := k.AllocSegment(8192)
	if err != nil {
		return 0, 0, err
	}
	aSeg, err := k.AllocSegment(8192)
	if err != nil {
		return 0, 0, err
	}
	th, err := k.Spawn(1, ip, map[int]word.Word{1: bSeg.Word(), 2: aSeg.Word()})
	if err != nil {
		return 0, 0, err
	}
	k.Run(10_000_000)
	if th.State != machine.Halted {
		return 0, 0, fmt.Errorf("thread: %v %v", th.State, th.Fault)
	}
	return k.M.Stats().Cycles, k.M.Stats().Instructions, nil
}
