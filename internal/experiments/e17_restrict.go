package experiments

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/word"
)

func init() {
	register("E17", "Sec 2.2 ablation — RESTRICT/SUBSEG in hardware vs emulated via privileged routine", runE17)
}

// runE17 measures the design choice the paper itself flags: "The
// RESTRICT and SUBSEG instructions are not completely necessary, as
// they can be emulated by providing user processes with
// enter-privileged pointers to routines that use the SETPTR
// instruction … The M-Machine takes this approach." We measure both:
//
//   - hardware RESTRICT: one user-mode instruction;
//   - emulation: jump through an enter-privileged pointer to a
//     privileged routine that rebuilds the pointer with SETPTR and
//     returns.
//
// The emulated path is still kernel-trap-free (it is a protected
// subsystem call, not a trap), which is why the M-Machine could afford
// to drop the instructions.
func runE17() (string, error) {
	tbl := stats.NewTable("Deriving a read-only pointer from a read/write pointer",
		"mechanism", "cycles/derivation", "privilege crossings")

	// Hardware path: restrict instruction in a loop.
	hw, err := measure(func(k *kernel.Kernel, iters int64) (*machine.Thread, error) {
		src := fmt.Sprintf(`
			ldi r15, %d
			ldi r2, %d        ; PermReadOnly
		loop:
			restrict r3, r1, r2
			subi r15, r15, 1
			bnez r15, loop
			halt
		`, iters, int64(core.PermReadOnly))
		ip, err := loadSrc(k, src)
		if err != nil {
			return nil, err
		}
		seg, err := k.AllocSegment(4096)
		if err != nil {
			return nil, err
		}
		return k.Spawn(1, ip, map[int]word.Word{1: seg.Word()})
	})
	if err != nil {
		return "", err
	}

	// Emulated path: an enter-privileged routine. Convention:
	// r1 = pointer to restrict (arrives as an integer image after the
	// caller strips it? No — the caller passes the pointer itself; the
	// routine, running privileged, lowers the permission by rebuilding
	// the word with SETPTR).
	//
	// The routine: take pointer in r3, integer image in r4 = r3+0,
	// clear the permission field, OR in read-only, SETPTR, return.
	em, err := measure(func(k *kernel.Kernel, iters int64) (*machine.Thread, error) {
		routine, err := asm.Assemble(fmt.Sprintf(`
		entry:
			; validate: this gate only lowers read/write to read-only —
			; without the check it would be an amplification oracle.
			getperm r7, r3
			seqi    r8, r7, %d   ; must be read/write
			beqz    r8, fail
			add     r4, r3, r0   ; integer image (tag cleared)
			ldi     r5, 15
			shli    r5, r5, 60   ; permission-field mask
			ldi     r6, -1
			xor     r5, r5, r6   ; ~mask
			and     r4, r4, r5   ; clear permission field
			ldi     r5, %d       ; PermReadOnly
			shli    r5, r5, 60
			or      r4, r4, r5   ; insert read-only
			setptr  r3, r4       ; privileged re-mint
			jmp     r14
		fail:
			ldi r3, 0
			jmp r14
		`, int64(core.PermReadWrite), int64(core.PermReadOnly)))
		if err != nil {
			return nil, err
		}
		enter, err := k.InstallSubsystem(routine, "entry", nil)
		if err != nil {
			return nil, err
		}
		// The routine must run privileged: re-mint its entry as
		// enter-privileged (kernel authority).
		enterPriv, err := core.Make(core.PermEnterPriv, enter.LogLen(), enter.Addr())
		if err != nil {
			return nil, err
		}
		src := fmt.Sprintf(`
			ldi r15, %d
		loop:
			mov  r3, r1
			jmpl r14, r2       ; call the privileged deriviation routine
			subi r15, r15, 1
			bnez r15, loop
			halt
		`, iters)
		ip, err := loadSrc(k, src)
		if err != nil {
			return nil, err
		}
		seg, err := k.AllocSegment(4096)
		if err != nil {
			return nil, err
		}
		return k.Spawn(1, ip, map[int]word.Word{1: seg.Word(), 2: enterPriv.Word()})
	})
	if err != nil {
		return "", err
	}

	empty, err := measure(func(k *kernel.Kernel, iters int64) (*machine.Thread, error) {
		src := fmt.Sprintf("ldi r15, %d\nloop: subi r15, r15, 1\nbnez r15, loop\nhalt", iters)
		ip, err := loadSrc(k, src)
		if err != nil {
			return nil, err
		}
		return k.Spawn(1, ip, nil)
	})
	if err != nil {
		return "", err
	}

	tbl.AddRow("hardware RESTRICT instruction", hw-empty, 0)
	tbl.AddRow("enter-priv routine + SETPTR (M-Machine's choice)", em-empty, 2)
	return tbl.String() + fmt.Sprintf(
		"\nemulation costs %s but needs no kernel trap (two protected-subsystem jumps);\nthe M-Machine dropped the instructions because derivation is rare relative to dereference\n",
		stats.Ratio(em-empty, hw-empty)), nil
}
