package experiments

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/multi"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/word"
)

func init() {
	register("E14", "Sec 3 — multicomputer: remote access over the 3D mesh", runE14)
	register("E15", "Sec 3/6 — global capabilities: cross-node sharing without protection state", runE15)
}

// runE14 measures remote memory access on the mesh multicomputer: a
// thread on node 0 walks a segment homed 0..3 hops away. Latency grows
// with distance; the protection cost stays zero because the checks
// completed on the issuing node before the request ever entered the
// network.
func runE14() (string, error) {
	var b strings.Builder
	cfg := multi.DefaultConfig()
	cfg.Mesh = noc.Config{DimX: 4, DimY: 1, DimZ: 1, RouterLatency: 2, InjectLatency: 1}
	cfg.Node.PhysBytes = 1 << 20

	tbl := stats.NewTable("Dependent-load latency vs home-node distance (4×1×1 mesh, 2-cycle hops)",
		"hops", "zero-load round trip", "measured cycles/load", "network messages")
	prog, err := asm.Assemble(`
		ldi r3, 200
	loop:
		ld r2, r1, 0
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	if err != nil {
		return "", err
	}
	for dst := 0; dst < 4; dst++ {
		s, err := multi.New(cfg)
		if err != nil {
			return "", err
		}
		seg, err := s.Nodes[dst].K.AllocSegment(4096)
		if err != nil {
			return "", err
		}
		ip, err := s.Nodes[0].K.LoadProgram(prog, false)
		if err != nil {
			return "", err
		}
		th, err := s.Nodes[0].K.Spawn(1, ip, map[int]word.Word{1: seg.Word()})
		if err != nil {
			return "", err
		}
		cycles := s.Run(10_000_000)
		if th.State != machine.Halted {
			return "", fmt.Errorf("dst %d: %v %v", dst, th.State, th.Fault)
		}
		zeroLoad := "-"
		if dst > 0 {
			zeroLoad = fmt.Sprintf("%d", 2*s.Net.ZeroLoadLatency(0, dst))
		}
		tbl.AddRow(s.Net.Hops(0, dst), zeroLoad,
			float64(cycles)/200, s.Net.Stats().Messages)
	}
	b.WriteString(tbl.String())

	// Contention: 7 nodes hammer one home node simultaneously.
	s, err := multi.New(multiSmall())
	if err != nil {
		return "", err
	}
	shared, err := s.Nodes[0].K.AllocSegment(4096)
	if err != nil {
		return "", err
	}
	for nid := 1; nid < len(s.Nodes); nid++ {
		ip, err := s.Nodes[nid].K.LoadProgram(prog, false)
		if err != nil {
			return "", err
		}
		if _, err := s.Nodes[nid].K.Spawn(1, ip, map[int]word.Word{1: shared.Word()}); err != nil {
			return "", err
		}
	}
	cycles := s.Run(10_000_000)
	for _, n := range s.Nodes {
		for _, th := range n.K.M.Threads() {
			if th.State != machine.Halted {
				return "", fmt.Errorf("node %d thread: %v %v", n.ID, th.State, th.Fault)
			}
		}
	}
	ns := s.Net.Stats()
	fmt.Fprintf(&b, "\nhot-spot: 7 nodes × 200 loads against one home node: %d cycles, "+
		"%d messages, %d link-contention cycles,\nhome-bank conflicts %d — "+
		"the home's banked cache and the mesh serialize fairly; no protection structure is involved\n",
		cycles, ns.Messages, ns.ContentionCycles, s.Nodes[0].K.M.Cache.Stats().ConflictCycles)
	return b.String(), nil
}

func multiSmall() multi.Config {
	cfg := multi.DefaultConfig()
	cfg.Node.PhysBytes = 1 << 20
	return cfg
}

// runE15 demonstrates the global-capability property: a capability
// minted on one node is transferred to every other node as a plain
// word and used there, with per-node protection state identically
// zero. The same sharing under per-node page-table schemes would need
// an entry per (node, page).
func runE15() (string, error) {
	var b strings.Builder
	s, err := multi.New(multiSmall())
	if err != nil {
		return "", err
	}

	// Node 0 owns a table and a mailbox per peer; it publishes a
	// read-only capability to each mailbox; every peer polls its
	// mailbox, then sums the table remotely.
	table, err := s.Nodes[0].K.AllocSegment(512)
	if err != nil {
		return "", err
	}
	var sum int64
	words := make([]word.Word, 64)
	for i := range words {
		words[i] = word.FromInt(int64(i) * 3)
		sum += int64(i) * 3
	}
	if err := s.Nodes[0].K.WriteWords(table, words); err != nil {
		return "", err
	}

	consumer, err := asm.Assemble(`
	wait:
		ld    r3, r1, 0      ; poll mailbox for the capability
		isptr r4, r3
		beqz  r4, wait
		ldi   r5, 64
		ldi   r6, 0
	loop:
		ld    r7, r3, 0
		add   r6, r6, r7
		subi  r5, r5, 1
		beqz  r5, done
		leai  r3, r3, 8
		br    loop
	done:
		halt
	`)
	if err != nil {
		return "", err
	}

	var mailboxes []word.Word
	var threads []*machine.Thread
	for nid := 1; nid < len(s.Nodes); nid++ {
		mb, err := s.Nodes[0].K.AllocSegment(64)
		if err != nil {
			return "", err
		}
		mailboxes = append(mailboxes, mb.Word())
		ip, err := s.Nodes[nid].K.LoadProgram(consumer, false)
		if err != nil {
			return "", err
		}
		th, err := s.Nodes[nid].K.Spawn(nid, ip, map[int]word.Word{1: mb.Word()})
		if err != nil {
			return "", err
		}
		threads = append(threads, th)
	}
	// Publish: the "producer" here is the node-0 kernel writing one
	// tagged word per mailbox — capability transfer is just a store.
	// The consumers get only read rights.
	ro, err := core.Restrict(table, core.PermReadOnly)
	if err != nil {
		return "", err
	}
	for _, mb := range mailboxes {
		p, err := decodePtr(mb)
		if err != nil {
			return "", err
		}
		if err := s.Nodes[0].K.WriteWords(p, []word.Word{ro.Word()}); err != nil {
			return "", err
		}
	}
	cycles := s.Run(20_000_000)
	ok := 0
	for _, th := range threads {
		if th.State == machine.Halted && th.Reg(6).Int() == sum {
			ok++
		} else if th.State != machine.Halted {
			return "", fmt.Errorf("consumer: %v %v", th.State, th.Fault)
		}
	}

	tbl := stats.NewTable("Cross-node sharing of one 512B segment (2×2×2 mesh)",
		"metric", "value")
	tbl.AddRow("consumer nodes that obtained + used the capability", fmt.Sprintf("%d/7", ok))
	tbl.AddRow("capability-transfer cost per node", "1 stored word (the pointer itself)")
	tbl.AddRow("inter-node protection/translation state", "0 bytes")
	tbl.AddRow("page-table scheme equivalent (1 page × 7 nodes)", "7 PTEs + kernel handshakes")
	tbl.AddRow("total cycles", cycles)
	tbl.AddRow("mesh messages", s.Net.Stats().Messages)
	b.WriteString(tbl.String())
	b.WriteString("\na guarded pointer is valid machine-wide: sharing across nodes and protection domains is\nsending one word (Sec 6), with all checks performed by the user of the capability\n")
	return b.String(), nil
}

func decodePtr(w word.Word) (core.Pointer, error) {
	return core.Decode(w)
}
