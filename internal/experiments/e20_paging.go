package experiments

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/word"
)

func init() {
	register("E20", "Sec 5.2 substrate — demand paging under the single address space", runE20)
}

// runE20 exercises the paging layer the paper assumes underneath
// segments: one shared page table and backing store serve every
// protection domain. A fixed 24-page working set is swept repeatedly
// while physical memory shrinks from ample to starved; the pager's
// fault/eviction counts and the run time trace the classic thrash
// curve. Capabilities page in and out with their tag bits intact.
func runE20() (string, error) {
	tbl := stats.NewTable("Repeated sweep of a 24-page working set vs physical memory size (clock eviction)",
		"physical pages", "cycles", "demand-zero", "swap-ins", "evictions", "cycles vs ample")
	var ample float64
	for _, physPages := range []int{64, 32, 20, 12, 8} {
		cycles, st, err := pagingRun(physPages)
		if err != nil {
			return "", err
		}
		ratio := "1.00x"
		if ample == 0 {
			ample = float64(cycles)
		} else {
			ratio = stats.Ratio(float64(cycles), ample)
		}
		tbl.AddRow(physPages, cycles, st.DemandZero, st.SwapIns, st.Evictions, ratio)
	}
	return tbl.String() + "\nwith memory ample the only pager work is demand-zeroing the first touch; once the working set\nexceeds physical memory the sweep floods the clock (the classic sequential-flooding worst case:\nevery pass misses every page, so 20 frames thrash as hard as 8). Correctness is untouched, and\nthe pager is one shared mechanism for all domains — no per-process page tables (Sec 5.1/5.2)\n", nil
}

func pagingRun(physPages int) (uint64, kernel.PagingStats, error) {
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	cfg.PhysBytes = uint64(physPages) * vm.PageSize
	k, err := kernel.New(cfg)
	if err != nil {
		return 0, kernel.PagingStats{}, err
	}
	k.EnableDemandPaging(0)
	k.SetPagingCosts(50, 2000) // zero-fill vs backing-store service time
	seg, err := k.AllocSegmentLazy(24 * vm.PageSize)
	if err != nil {
		return 0, kernel.PagingStats{}, err
	}
	prog, err := asm.Assemble(`
		ldi r7, 4          ; passes
	pass:
		ldi r2, 24         ; pages
		mov r3, r1
	page:
		ldi r4, 1
		st  r3, 0, r4
		ld  r5, r3, 0
		subi r2, r2, 1
		beqz r2, nextpass
		leai r3, r3, 4096
		br   page
	nextpass:
		subi r7, r7, 1
		bnez r7, pass
		halt
	`)
	if err != nil {
		return 0, kernel.PagingStats{}, err
	}
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		return 0, kernel.PagingStats{}, err
	}
	th, err := k.Spawn(1, ip, map[int]word.Word{1: seg.Word()})
	if err != nil {
		return 0, kernel.PagingStats{}, err
	}
	k.Run(50_000_000)
	if th.State != machine.Halted {
		return 0, kernel.PagingStats{}, fmt.Errorf("thread: %v %v", th.State, th.Fault)
	}
	return k.M.Stats().Cycles, k.PagingStatsSnapshot(), nil
}
