package experiments

import (
	"fmt"
	"sync"

	"repro/internal/asm"
	"repro/internal/faultinject"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/migrate"
	"repro/internal/multi"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/word"
)

func init() {
	registerWithMetrics("E29",
		"Robustness — live node migration: iterative pre-copy converges, cutover STW is bounded by the final delta, aborts are bit-invisible, faulted wires recover by retransmission",
		runE29, metricsE29)
}

// E29 audits live migration in three movements:
//
//  1. Migration differential — a live migration of a node holding
//     cross-node state commits mid-run and the run finishes with the
//     never-migrated architectural outcome; then the same migration is
//     aborted at EVERY round boundary and mid-cutover, and each aborted
//     run must be bit-identical (cycles, stats, registers) to a run
//     that never migrated.
//  2. Dirty-rate sweep — on a 200-page footprint with a controlled
//     per-round dirty rate, the rounds to converge and the cutover
//     stop-the-world window; the gate is STW ≥ 5× smaller than the
//     full-image transfer at every dirty rate ≤ 10%. (Wall-time twin:
//     make bench-migrate → BENCH_migrate.json.)
//  3. Migration-fault campaign — seeded frame loss/corruption/
//     duplication/truncation on the migration wire plus source kill,
//     standby crash and cutover interruption; the gate is zero
//     unrecovered faults, zero divergence, and lossy wires recovering
//     by retransmission rather than restarting.

type e29DiffRow struct {
	name   string
	rounds int
	commit bool
	match  bool
}

type e29SweepRow struct {
	pct      int
	rounds   int
	pages    int
	baseWire uint64
	stw      uint64
	ratio    float64
}

type e29Results struct {
	diff     []e29DiffRow
	allMatch bool
	probe    *migrate.Report
	sweep    []e29SweepRow
	campaign *faultinject.Result
}

var e29Once struct {
	sync.Once
	res *e29Results
	err error
}

func e29Result() (*e29Results, error) {
	e29Once.Do(func() {
		e29Once.res, e29Once.err = e29Compute()
	})
	return e29Once.res, e29Once.err
}

// e29System boots the differential's 2-node mesh: the node-0 thread
// mixes remote loads/stores against node 1's segment with local
// traffic, so the migrating node holds live cross-node state.
func e29System(mut func(*multi.Config)) (*multi.System, error) {
	cfg := multi.DefaultConfig()
	cfg.Mesh = noc.Config{DimX: 2, DimY: 1, DimZ: 1, RouterLatency: 2, InjectLatency: 1}
	cfg.Node.PhysBytes = 1 << 20
	cfg.Node.Clusters = 1
	cfg.Node.SlotsPerCluster = 2
	if mut != nil {
		mut(&cfg)
	}
	s, err := multi.New(cfg)
	if err != nil {
		return nil, err
	}
	far, err := s.Nodes[1].K.AllocSegment(4096)
	if err != nil {
		return nil, err
	}
	local, err := s.Nodes[0].K.AllocSegment(4096)
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(`
		ldi r3, 120
	loop:
		ld   r2, r1, 0
		add  r5, r5, r2
		st   r1, 0, r5
		st   r6, 0, r5
		ld   r7, r6, 0
		add  r5, r5, r7
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	if err != nil {
		return nil, err
	}
	ip, err := s.Nodes[0].K.LoadProgram(prog, false)
	if err != nil {
		return nil, err
	}
	if _, err := s.Nodes[0].K.Spawn(1, ip, map[int]word.Word{1: far.Word(), 6: local.Word()}); err != nil {
		return nil, err
	}
	return s, nil
}

func e29Link() migrate.LinkConfig {
	return migrate.LinkConfig{LatencyCycles: 4, BytesPerCycle: 1024, RetransmitTimeout: 16}
}

// e29FullFP is the EXACT run fingerprint — cycles, system stats, NoC
// stats, per-node machine stats and every thread's architectural state
// — used by the abort-invariance gate.
func e29FullFP(s *multi.System, cycles uint64) (string, error) {
	fp := fmt.Sprintf("cycles=%d sys=%d stats=%+v net=%+v\n", cycles, s.Cycle(), s.Stats(), s.Net.Stats())
	for id, n := range s.Nodes {
		for _, th := range n.K.M.Threads() {
			if th.State != machine.Halted {
				return "", fmt.Errorf("e29: node %d thread did not halt: %v %v", id, th.State, th.Fault)
			}
			fp += fmt.Sprintf("node%d: instret=%d regs=%v\n", id, th.Instret, th.Regs)
		}
		fp += fmt.Sprintf("node%d stats: %+v\n", id, n.K.M.Stats())
	}
	return fp, nil
}

// e29Outcome is the timing-excluded architectural outcome, for the
// committed-migration comparison (a committed migration changes cycle
// accounting — wire time — but must not change what the program did).
func e29Outcome(s *multi.System) (uint64, error) {
	var all []*machine.Thread
	for id, n := range s.Nodes {
		for _, th := range n.K.M.Threads() {
			if th.State != machine.Halted {
				return 0, fmt.Errorf("e29: node %d thread did not halt: %v %v", id, th.State, th.Fault)
			}
		}
		all = append(all, s.Nodes[id].K.M.Threads()...)
	}
	return e27Fingerprint(all), nil
}

func e29Diff() ([]e29DiffRow, bool, *migrate.Report, error) {
	// Reference: never migrated.
	ref, err := e29System(nil)
	if err != nil {
		return nil, false, nil, err
	}
	refCycles := ref.Run(300_000)
	refFull, err := e29FullFP(ref, refCycles)
	if err != nil {
		return nil, false, nil, err
	}
	refOutcome, err := e29Outcome(ref)
	if err != nil {
		return nil, false, nil, err
	}

	// Committed migration: same outcome, and a probe for the round count.
	com, err := e29System(func(c *multi.Config) {
		c.MigrateAt = 200
		c.Migrate = migrate.Config{Link: e29Link()}
	})
	if err != nil {
		return nil, false, nil, err
	}
	com.Run(300_000)
	probe := com.MigrateReport()
	if probe == nil || !probe.Committed {
		return nil, false, nil, fmt.Errorf("e29: armed migration did not commit: %+v", probe)
	}
	outcome, err := e29Outcome(com)
	if err != nil {
		return nil, false, nil, err
	}
	all := outcome == refOutcome
	rows := []e29DiffRow{{name: "commit", rounds: len(probe.Rounds), commit: true, match: outcome == refOutcome}}

	// Abort sweep: every round boundary plus mid-cutover must be
	// bit-identical to the never-migrated reference.
	sweep := make(map[string]migrate.Config)
	for r := 1; r <= len(probe.Rounds); r++ {
		sweep[fmt.Sprintf("abort@round-%d", r)] = migrate.Config{Link: e29Link(), AbortAtRound: r}
	}
	sweep["abort@cutover"] = migrate.Config{Link: e29Link(), AbortAtCutover: true}
	names := make([]string, 0, len(sweep))
	for r := 1; r <= len(probe.Rounds); r++ {
		names = append(names, fmt.Sprintf("abort@round-%d", r))
	}
	names = append(names, "abort@cutover")
	for _, name := range names {
		s, err := e29System(func(c *multi.Config) {
			c.MigrateAt = 200
			c.Migrate = sweep[name]
		})
		if err != nil {
			return nil, false, nil, err
		}
		cycles := s.Run(300_000)
		rep := s.MigrateReport()
		if rep == nil || rep.Committed {
			return nil, false, nil, fmt.Errorf("e29: %s did not abort: %+v", name, rep)
		}
		full, err := e29FullFP(s, cycles)
		if err != nil {
			return nil, false, nil, err
		}
		match := full == refFull
		all = all && match
		rows = append(rows, e29DiffRow{name: name, rounds: len(rep.Rounds), match: match})
	}
	return rows, all, probe, nil
}

// e29Sweep migrates a 200-page footprint while a step hook dirties a
// controlled fraction of the pages per pre-copy round: the deltas, the
// rounds to converge, and the cutover window are then pure functions of
// the dirty rate.
func e29Sweep() ([]e29SweepRow, error) {
	const pages = 200
	var rows []e29SweepRow
	for _, pct := range []int{1, 5, 10, 25, 50} {
		cfg := machine.MMachine()
		cfg.PhysBytes = 8 << 20
		k, err := kernel.New(cfg)
		if err != nil {
			return nil, err
		}
		seg, err := k.AllocSegment(pages * vm.PageSize)
		if err != nil {
			return nil, err
		}
		base := seg.Addr()
		sp := k.M.Space
		// Dense data so the full image has real weight.
		for p := 0; p < pages; p++ {
			for w := 0; w < vm.PageSize/8; w += 8 {
				off := uint64(p)*vm.PageSize + uint64(w)*8
				if err := sp.WriteWord(base+off, word.FromInt(int64(off*2654435761+1))); err != nil {
					return nil, err
				}
			}
		}

		n := pages * pct / 100
		stride := pages / n
		tick := int64(0)
		var stepErr error
		dirty := func(uint64) {
			tick++
			for i := 0; i < n; i++ {
				addr := base + uint64((i*stride)%pages)*vm.PageSize
				if err := sp.WriteWord(addr, word.FromInt(tick*1_000_000+int64(i))); err != nil {
					stepErr = err
					return
				}
			}
		}

		recv := migrate.NewReceiver()
		link := migrate.NewLink(migrate.LinkConfig{LatencyCycles: 16, BytesPerCycle: 64, RetransmitTimeout: 64})
		link.Deliver = recv.Deliver
		rep, err := migrate.Run(k, link, recv, dirty, migrate.Config{
			RoundBudget: 6, ConvergePages: pages / 20,
		})
		if err != nil {
			return nil, fmt.Errorf("e29: sweep %d%%: %w", pct, err)
		}
		if stepErr != nil {
			return nil, stepErr
		}
		if !rep.Committed {
			return nil, fmt.Errorf("e29: sweep %d%% did not commit: %s", pct, rep.Reason)
		}
		last := rep.Rounds[len(rep.Rounds)-1]
		rows = append(rows, e29SweepRow{
			pct:      pct,
			rounds:   len(rep.Rounds),
			pages:    last.Pages,
			baseWire: rep.Rounds[0].WireCycles,
			stw:      rep.STWCycles,
			ratio:    float64(rep.Rounds[0].WireCycles) / float64(rep.STWCycles),
		})
	}
	return rows, nil
}

func e29Compute() (*e29Results, error) {
	diff, all, probe, err := e29Diff()
	if err != nil {
		return nil, err
	}
	sweep, err := e29Sweep()
	if err != nil {
		return nil, err
	}
	campaign, err := faultinject.RunCampaign(faultinject.DefaultMigrateCampaign())
	if err != nil {
		return nil, err
	}
	return &e29Results{diff: diff, allMatch: all, probe: probe, sweep: sweep, campaign: campaign}, nil
}

func runE29() (string, error) {
	res, err := e29Result()
	if err != nil {
		return "", err
	}

	tbl := stats.NewTable("Live-migration differential (2-node mesh, migration armed at cycle 200)",
		"scenario", "rounds", "ended", "fingerprint")
	for _, r := range res.diff {
		ended := "aborted"
		if r.commit {
			ended = "committed"
		}
		fp := "match"
		if !r.match {
			fp = "DIVERGED"
		}
		tbl.AddRow(r.name, r.rounds, ended, fp)
	}
	out := tbl.String()

	rt := stats.NewTable("\nCommitted pre-copy shape (pages per round shrink to the cutover delta)",
		"round", "pages", "tombstones", "bytes", "wire cycles")
	for i, rd := range res.probe.Rounds {
		rt.AddRow(fmt.Sprint(i+1), rd.Pages, rd.Tombstones, rd.Bytes, int(rd.WireCycles))
	}
	out += rt.String()
	out += fmt.Sprintf("\ncutover stop-the-world window: %d cycles (source stepped %d cycles during pre-copy)\n",
		res.probe.STWCycles, res.probe.SteppedCycles)

	st := stats.NewTable("\nDirty-rate sweep (200-page footprint, controlled pages dirtied per round)",
		"dirty/round", "rounds", "final pages", "full-image wire", "STW window", "ratio")
	for _, r := range res.sweep {
		st.AddRow(fmt.Sprintf("%d%%", r.pct), r.rounds, r.pages,
			int(r.baseWire), int(r.stw), fmt.Sprintf("%.1fx", r.ratio))
	}
	out += st.String()

	out += "\n" + res.campaign.Table()

	if !res.allMatch {
		return out, fmt.Errorf("e29: a migration scenario diverged from the never-migrated run")
	}
	if len(res.probe.Rounds) < 2 {
		return out, fmt.Errorf("e29: migration committed without iterative pre-copy")
	}
	for _, r := range res.sweep {
		if r.pct <= 10 && r.ratio < 5 {
			return out, fmt.Errorf("e29: STW at %d%% dirty only %.1fx below the full-image transfer (want ≥ 5x)", r.pct, r.ratio)
		}
	}
	if res.campaign.Detected != 0 {
		return out, fmt.Errorf("e29: %d unrecovered migration faults (want 0)", res.campaign.Detected)
	}
	if res.campaign.Escaped != 0 {
		return out, fmt.Errorf("e29: %d escaped migration faults (want 0)", res.campaign.Escaped)
	}
	if res.campaign.MigrateRetransmits == 0 {
		return out, fmt.Errorf("e29: no lossy-wire trial recovered by retransmission")
	}

	out += "\na committed migration preserves the never-migrated outcome and every abort —\n" +
		"at each round boundary and mid-cutover — is bit-identical to never migrating;\n" +
		"the cutover window is bounded by the final delta (≥5x below the full image at\n" +
		"≤10% dirty); and every seeded migration fault (lossy/corrupt/duplicated/torn\n" +
		"frames, source kill, standby crash, cutover interrupt) was tolerated, with wire\n" +
		"damage recovered by retransmission (wall-time twin: make bench-migrate)\n"
	return out, nil
}

func metricsE29() (telemetry.Snapshot, error) {
	res, err := e29Result()
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	res.campaign.RegisterMetrics(reg)
	match := uint64(0)
	if res.allMatch {
		match = 1
	}
	reg.Counter("e29.diff.match", func() uint64 { return match })
	reg.Counter("e29.probe.rounds", func() uint64 { return uint64(len(res.probe.Rounds)) })
	reg.Counter("e29.probe.stw_cycles", func() uint64 { return res.probe.STWCycles })
	for _, r := range res.sweep {
		ratio := uint64(r.ratio * 10)
		pct := r.pct
		reg.Counter(fmt.Sprintf("e29.sweep.ratio_x10.%dpct", pct), func() uint64 { return ratio })
	}
	return reg.Snapshot(), nil
}
