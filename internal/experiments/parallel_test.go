package experiments

import (
	"errors"
	"strings"
	"testing"
)

// deterministicSubset picks experiments whose reports depend only on
// simulated state — E22 is excluded because it prints host wall-clock
// timings. The subset keeps the test fast while still covering real
// simulator runs on every worker.
func deterministicSubset(t *testing.T) []Experiment {
	t.Helper()
	var list []Experiment
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %s missing from registry", id)
		}
		list = append(list, e)
	}
	return list
}

// TestParallelRenderByteIdentical: running experiments on a worker pool
// must concatenate to exactly the serial output — experiments are
// independent, ordering is restored at render time. The Makefile race
// gate runs this under -race.
func TestParallelRenderByteIdentical(t *testing.T) {
	list := deterministicSubset(t)
	serial, err := Render(list, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		parallel, err := Render(list, workers)
		if err != nil {
			t.Fatal(err)
		}
		if parallel != serial {
			t.Errorf("workers=%d output differs from serial (%d vs %d bytes)",
				workers, len(parallel), len(serial))
		}
	}
	for _, e := range list {
		if !strings.Contains(serial, "=== "+e.ID+": ") {
			t.Errorf("output missing section for %s", e.ID)
		}
	}
}

// TestRenderErrorContract: an error surfaces as "<id>: <err>" with the
// reports preceding it (in input order) already rendered — identical
// for serial and parallel pools.
func TestRenderErrorContract(t *testing.T) {
	boom := errors.New("boom")
	list := []Experiment{
		{ID: "X1", Title: "ok", Run: func() (string, error) { return "fine\n", nil }},
		{ID: "X2", Title: "fails", Run: func() (string, error) { return "", boom }},
		{ID: "X3", Title: "after", Run: func() (string, error) { return "later\n", nil }},
	}
	for _, workers := range []int{1, 3} {
		out, err := Render(list, workers)
		if !errors.Is(err, boom) || !strings.Contains(err.Error(), "X2") {
			t.Errorf("workers=%d: err = %v, want X2: boom", workers, err)
		}
		if want := "=== X1: ok ===\nfine\n\n"; out != want {
			t.Errorf("workers=%d: partial output %q, want %q", workers, out, want)
		}
	}
}
