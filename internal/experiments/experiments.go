// Package experiments regenerates every figure and quantitative claim
// of the paper as a printed table. Each experiment is a pure function
// returning a rendered report; the registry maps experiment ids (E1 …
// E13, as indexed in DESIGN.md) to runners so cmd/experiments and the
// root benchmark suite share one implementation.
//
// The paper has no measured tables — its evaluation is Figures 1–5 plus
// quantitative claims embedded in the text — so each experiment either
// animates a figure on the simulator (E1–E5) or measures a claim
// against the competing schemes of Sec 5 (E6–E13). EXPERIMENTS.md
// records the paper-claim vs measured-shape comparison for each.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// Experiment is one reproducible artifact.
type Experiment struct {
	ID    string
	Title string
	// Run produces the rendered report.
	Run func() (string, error)
	// Metrics, when non-nil, produces the experiment's machine-readable
	// counters for -json output (in addition to the tables ParseTables
	// recovers from the rendered report).
	Metrics func() (telemetry.Snapshot, error)
}

// registry in id order.
var registry []Experiment

func register(id, title string, run func() (string, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// registerWithMetrics registers an experiment that also exports a
// telemetry snapshot alongside its rendered report.
func registerWithMetrics(id, title string, run func() (string, error), metrics func() (telemetry.Snapshot, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run, Metrics: metrics})
}

// All returns every experiment in id order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return idOrder(out[i].ID) < idOrder(out[j].ID) })
	return out
}

func idOrder(id string) int {
	var n int
	fmt.Sscanf(strings.TrimPrefix(id, "E"), "%d", &n)
	return n
}

// Lookup finds an experiment by id (case-insensitive).
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment and concatenates the reports.
func RunAll() (string, error) {
	var b strings.Builder
	for _, e := range All() {
		out, err := e.Run()
		if err != nil {
			return b.String(), fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(&b, "=== %s: %s ===\n%s\n", e.ID, e.Title, out)
	}
	return b.String(), nil
}
