// Package experiments regenerates every figure and quantitative claim
// of the paper as a printed table. Each experiment is a pure function
// returning a rendered report; the registry maps experiment ids (E1 …
// E13, as indexed in DESIGN.md) to runners so cmd/experiments and the
// root benchmark suite share one implementation.
//
// The paper has no measured tables — its evaluation is Figures 1–5 plus
// quantitative claims embedded in the text — so each experiment either
// animates a figure on the simulator (E1–E5) or measures a claim
// against the competing schemes of Sec 5 (E6–E13). EXPERIMENTS.md
// records the paper-claim vs measured-shape comparison for each.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Experiment is one reproducible artifact.
type Experiment struct {
	ID    string
	Title string
	// Run produces the rendered report.
	Run func() (string, error)
	// Metrics, when non-nil, produces the experiment's machine-readable
	// counters for -json output (in addition to the tables ParseTables
	// recovers from the rendered report).
	Metrics func() (telemetry.Snapshot, error)
}

// registry in id order.
var registry []Experiment

func register(id, title string, run func() (string, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// registerWithMetrics registers an experiment that also exports a
// telemetry snapshot alongside its rendered report.
func registerWithMetrics(id, title string, run func() (string, error), metrics func() (telemetry.Snapshot, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run, Metrics: metrics})
}

// All returns every experiment in id order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return idOrder(out[i].ID) < idOrder(out[j].ID) })
	return out
}

func idOrder(id string) int {
	var n int
	fmt.Sscanf(strings.TrimPrefix(id, "E"), "%d", &n)
	return n
}

// Lookup finds an experiment by id (case-insensitive).
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment serially and concatenates the
// reports in id order.
func RunAll() (string, error) { return RunAllParallel(1) }

// RunAllParallel executes every experiment on a pool of workers
// (0 means GOMAXPROCS) and concatenates the reports in id order, so the
// rendered output is byte-identical to a serial run: experiments are
// independent — each builds its own machines — and only the scheduling
// changes. On error the reports preceding the first failing experiment
// (in id order) are returned, matching the serial contract.
func RunAllParallel(workers int) (string, error) {
	return Render(All(), workers)
}

// RunList executes the given experiments on a pool of workers (0 means
// GOMAXPROCS, 1 means serial on the calling goroutine) and returns the
// per-experiment outputs and errors in input order. A serial run stops
// at the first error; a parallel run may populate later slots, but
// Render ignores everything after the first error, preserving the
// serial contract.
func RunList(list []Experiment, workers int) ([]string, []error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(list) {
		workers = len(list)
	}
	outs := make([]string, len(list))
	errs := make([]error, len(list))
	if workers <= 1 {
		for i, e := range list {
			outs[i], errs[i] = e.Run()
			if errs[i] != nil {
				break
			}
		}
		return outs, errs
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(list) {
					return
				}
				outs[i], errs[i] = list[i].Run()
			}
		}()
	}
	wg.Wait()
	return outs, errs
}

// Render runs the experiments via RunList and concatenates the reports
// in input order.
func Render(list []Experiment, workers int) (string, error) {
	outs, errs := RunList(list, workers)
	var b strings.Builder
	for i, e := range list {
		if errs[i] != nil {
			return b.String(), fmt.Errorf("%s: %w", e.ID, errs[i])
		}
		fmt.Fprintf(&b, "=== %s: %s ===\n%s\n", e.ID, e.Title, outs[i])
	}
	return b.String(), nil
}
