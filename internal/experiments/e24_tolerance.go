package experiments

import (
	"fmt"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

func init() {
	registerWithMetrics("E24",
		"Robustness — fault-tolerance campaign: E23's fault mix absorbed by the self-healing stack",
		runE24, metricsE24)
}

// e24Campaign runs the tolerant audit once per process: the E23 fault
// mix rerun with ECC scrubbing, reliable NoC transport, and automatic
// checkpoint-driven recovery enabled. Cached so -json runs don't pay
// for it twice.
var e24Once struct {
	sync.Once
	res *faultinject.Result
	err error
}

func e24Result() (*faultinject.Result, error) {
	e24Once.Do(func() {
		e24Once.res, e24Once.err = faultinject.RunCampaign(faultinject.DefaultTolerantCampaign())
	})
	return e24Once.res, e24Once.err
}

// runE24 closes the loop E23 opened: detection alone is table stakes —
// with the tolerance stack on, every detectable fault must also be
// REPAIRED. The gates are strict: zero escapes, zero unrecovered
// detections, and the watchdog-driven auto-recovery must reproduce the
// clean run's architectural fingerprint bit for bit.
func runE24() (string, error) {
	res, err := e24Result()
	if err != nil {
		return "", err
	}
	out := res.Table()
	if res.Escaped != 0 {
		return out, fmt.Errorf("fault-tolerance audit: %d escapes (want 0)", res.Escaped)
	}
	if res.Detected != 0 {
		return out, fmt.Errorf("fault-tolerance audit: %d unrecovered faults (want 0)", res.Detected)
	}
	if res.Recovery == nil || !res.Recovery.Match {
		return out, fmt.Errorf("auto-recovery diverged: %s", res.Recovery)
	}
	out += "\nevery injection was either actively repaired (ECC correction, transport retransmission,\n" +
		"duplicate suppression, checkpoint rollback) or provably masked; the watchdog restored a\n" +
		"killed node from a coordinated checkpoint with no caller intervention, and the recovered\n" +
		"run's architectural fingerprint equals the clean run's\n"
	return out, nil
}

func metricsE24() (telemetry.Snapshot, error) {
	res, err := e24Result()
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	res.RegisterMetrics(reg)
	return reg.Snapshot(), nil
}
