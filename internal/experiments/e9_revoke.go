package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/word"
	"repro/internal/workload"
)

func init() {
	register("E9", "Sec 4.3 claims — revocation: unmap vs full address-space sweep", runE9)
}

// runE9 measures the two revocation paths of Sec 4.3 as the heap
// grows: invalidating all pointers to a segment at once by unmapping
// its pages (cost ∝ segment pages) versus sweeping every live segment
// to destroy capability copies (cost ∝ entire reachable heap).
func runE9() (string, error) {
	var b strings.Builder
	tbl := stats.NewTable("Revocation cost vs heap size (4KB victim segment, pointer copies scattered at 1/64 density)",
		"live segments", "heap words", "unmap: pages touched", "sweep: words scanned", "sweep/unmap work ratio", "copies destroyed")

	for _, nSegs := range []int{16, 64, 256} {
		row, err := revocationRun(nSegs)
		if err != nil {
			return "", err
		}
		tbl.AddRow(row...)
	}
	b.WriteString(tbl.String())
	b.WriteString(`
unmap cost is constant in heap size (pages of the victim only) but page-granular: sub-page
segments sharing a page with live data cannot be unmapped (Sec 4.3). The sweep is exact at any
granularity but scans the entire reachable heap — the paper's "expensive operation".
`)
	return b.String(), nil
}

func revocationRun(nSegs int) ([]interface{}, error) {
	cfg := machine.MMachine()
	cfg.PhysBytes = 64 << 20
	k, err := kernel.New(cfg)
	if err != nil {
		return nil, err
	}
	victim, err := k.AllocSegment(4096)
	if err != nil {
		return nil, err
	}
	rng := workload.NewRNG(uint64(nSegs))
	var heapWords uint64
	copies := 0
	for i := 0; i < nSegs; i++ {
		seg, err := k.AllocSegment(4096)
		if err != nil {
			return nil, err
		}
		words := seg.SegSize() / word.BytesPerWord
		heapWords += words
		// Scatter pointer copies to the victim at ~1/64 density.
		for w := uint64(0); w < words; w++ {
			if rng.Intn(64) == 0 {
				inner, err := core.LEA(victim, int64(rng.Intn(4096/8)*8))
				if err != nil {
					return nil, err
				}
				if err := k.M.Space.WriteWord(seg.Base()+w*8, inner.Word()); err != nil {
					return nil, err
				}
				copies++
			}
		}
	}

	// Path 1: sweep (measure first — unmapping would hide the copies).
	sweep, err := k.SweepRevoke(victim)
	if err != nil {
		return nil, err
	}
	// Path 2: unmap.
	if err := k.Revoke(victim); err != nil {
		return nil, err
	}
	unmapPages := victim.SegSize() / 4096

	ratio := float64(sweep.WordsScanned) / float64(unmapPages)
	return []interface{}{
		nSegs, heapWords, unmapPages, sweep.WordsScanned,
		fmt.Sprintf("%.0fx", ratio), sweep.PointersRewritten,
	}, nil
}
