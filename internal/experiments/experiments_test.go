package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 30 {
		t.Fatalf("registered %d experiments, want 30 (E1..E30)", len(all))
	}
	for i, e := range all {
		want := i + 1
		if idOrder(e.ID) != want {
			t.Errorf("position %d holds %s", i, e.ID)
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("E6"); !ok {
		t.Error("E6 not found")
	}
	if _, ok := Lookup("e6"); !ok {
		t.Error("lookup not case-insensitive")
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("E99 found")
	}
}

// runOne is a helper asserting an experiment produces a non-trivial
// report containing the given markers.
func runOne(t *testing.T, id string, markers ...string) string {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(out) < 100 {
		t.Fatalf("%s: suspiciously short report:\n%s", id, out)
	}
	for _, m := range markers {
		if !strings.Contains(out, m) {
			t.Errorf("%s: report missing %q:\n%s", id, m, out)
		}
	}
	return out
}

func TestE1(t *testing.T) {
	out := runOne(t, "E1", "2^54", "enter-priv", "385", "1.54%")
	if !strings.Contains(out, "read/write") {
		t.Error("rights matrix missing read/write row")
	}
}

func TestE2(t *testing.T) {
	runOne(t, "E2", "bounds fault", "64 accepted", "round trip")
}

func TestE3ShapeHolds(t *testing.T) {
	out := runOne(t, "E3", "enter pointer (minimal)", "kernel call gate")
	// The measured shape: the enter-pointer call must be at least an
	// order of magnitude cheaper than the trap gate.
	var enterCPC, gateCPC float64
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if strings.HasPrefix(l, "enter pointer (minimal)") {
			enterCPC = atofField(t, f[len(f)-2])
		}
		if strings.HasPrefix(l, "kernel call gate") {
			gateCPC = atofField(t, f[len(f)-2])
		}
	}
	if enterCPC == 0 || gateCPC == 0 {
		t.Fatalf("could not parse cycle columns:\n%s", out)
	}
	if gateCPC < 10*enterCPC {
		t.Errorf("gate %.1f vs enter %.1f: expected ≥10x gap", gateCPC, enterCPC)
	}
}

func atofField(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestE4MonotoneInLivePointers(t *testing.T) {
	out := runOne(t, "E4", "live pointers saved", "return segment")
	// Parse cycles column for live = 0 and live = 6: must increase.
	var c0, c6 float64
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) >= 3 && f[0] == "0" && strings.Contains(l, ".") {
			c0 = atofField(t, f[1])
		}
		if len(f) >= 3 && f[0] == "6" && strings.Contains(l, ".") {
			c6 = atofField(t, f[1])
		}
	}
	if c0 == 0 || c6 <= c0 {
		t.Errorf("two-way call cost not monotone: live0=%.1f live6=%.1f\n%s", c0, c6, out)
	}
}

func TestE5FourPerCycle(t *testing.T) {
	out := runOne(t, "E5", "staggered", "same-bank", "refs/cycle")
	if !strings.Contains(out, "4.00") {
		t.Errorf("staggered streams did not reach 4 refs/cycle:\n%s", out)
	}
	if !strings.Contains(out, "1.00") {
		t.Errorf("same-bank streams did not serialize to 1 ref/cycle:\n%s", out)
	}
}

func TestE6GuardedWins(t *testing.T) {
	out := runOne(t, "E6", "guarded-ptr", "page-noasid", "guarded-pointers")
	// Parse only the first (domain-count) table; the quantum-sweep
	// table reuses the same row labels.
	first := out
	if i := strings.Index(out, "switch quantum"); i >= 0 {
		first = out[:i]
	}
	lines := strings.Split(first, "\n")
	var guarded16, flush16 float64
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) >= 6 && f[0] == "guarded-ptr" {
			guarded16 = atofField(t, f[len(f)-1])
		}
		if len(f) >= 6 && f[0] == "page-noasid" {
			flush16 = atofField(t, f[len(f)-1])
		}
	}
	if guarded16 == 0 || flush16 < 3*guarded16 {
		t.Errorf("at 16 domains: guarded %.2f vs flush %.2f — shape broken", guarded16, flush16)
	}
}

func TestE7(t *testing.T) {
	runOne(t, "E7", "1.56%", "n×m", "65544 B")
}

func TestE8(t *testing.T) {
	out := runOne(t, "E8", "uniform-log", "pow2-exact")
	if !strings.Contains(out, "0.0%") {
		t.Errorf("pow2 requests should show zero internal fragmentation:\n%s", out)
	}
}

func TestE9SweepScalesUnmapDoesNot(t *testing.T) {
	runOne(t, "E9", "unmap", "sweep", "131584x")
}

func TestE10(t *testing.T) {
	out := runOne(t, "E10", "guarded", "sfi", "overhead")
	if !strings.Contains(out, "1.27x") && !strings.Contains(out, "1.26x") && !strings.Contains(out, "1.28x") {
		t.Errorf("machine-level SFI overhead missing:\n%s", out)
	}
}

func TestE11(t *testing.T) {
	runOne(t, "E11", "guarded pointer increment", "segment base + offset")
}

func TestE12(t *testing.T) {
	out := runOne(t, "E12", "1024", "words scanned")
	if !strings.Contains(out, "1.00") {
		t.Errorf("scan/live-word ratio should be 1.00:\n%s", out)
	}
}

func TestE13(t *testing.T) {
	runOne(t, "E13", "cap-table", "2 (cap→VA, VA→PA)", "guarded-ptr")
}

func TestE14RemoteLatencyMonotone(t *testing.T) {
	out := runOne(t, "E14", "hops", "hot-spot")
	var lat []float64
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) == 4 && (f[0] == "0" || f[0] == "1" || f[0] == "2" || f[0] == "3") {
			lat = append(lat, atofField(t, f[2]))
		}
	}
	if len(lat) != 4 {
		t.Fatalf("parsed %d latency rows:\n%s", len(lat), out)
	}
	for i := 1; i < len(lat); i++ {
		if lat[i] <= lat[i-1] {
			t.Errorf("latency not monotone in hops: %v", lat)
		}
	}
}

func TestE15AllConsumersSucceed(t *testing.T) {
	runOne(t, "E15", "7/7", "0 bytes")
}

func TestE16MultithreadingRecoversUtilization(t *testing.T) {
	out := runOne(t, "E16", "ILP-rich", "latency-bound", "4 threads")
	var rich1, poor1, poor4 float64
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) < 5 {
			continue
		}
		switch {
		case strings.HasPrefix(l, "ILP-rich"):
			rich1 = atofField(t, f[len(f)-2])
		case strings.HasPrefix(l, "latency-bound, single"):
			poor1 = atofField(t, f[len(f)-2])
		case strings.HasPrefix(l, "latency-bound, 4"):
			poor4 = atofField(t, f[len(f)-2])
		}
	}
	if rich1 < 1.5 {
		t.Errorf("ILP-rich IPC = %.2f, want > 1.5 (wide issue)", rich1)
	}
	if poor1 > 0.8 {
		t.Errorf("latency-bound single IPC = %.2f, want well under 1", poor1)
	}
	if poor4 < 1.5*poor1 {
		t.Errorf("multithreading did not recover utilization: %.2f vs %.2f", poor4, poor1)
	}
}

func TestE17EmulationCostsMoreButNoTrap(t *testing.T) {
	out := runOne(t, "E17", "hardware RESTRICT", "SETPTR", "no kernel trap")
	var hw, em float64
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if strings.HasPrefix(l, "hardware RESTRICT") {
			hw = atofField(t, f[len(f)-2])
		}
		if strings.HasPrefix(l, "enter-priv routine") {
			em = atofField(t, f[len(f)-2])
		}
	}
	if hw != 1 {
		t.Errorf("hardware restrict = %.2f cycles, want 1", hw)
	}
	if em < 5*hw || em > 200 {
		t.Errorf("emulated restrict = %.2f: expected 'costly but far below a trap'", em)
	}
}

func TestE18SparseCapabilities(t *testing.T) {
	runOne(t, "E18", "factor of 1024", "4/4", "forgery probability is 0")
}

func TestE19ProtectedIndirection(t *testing.T) {
	out := runOne(t, "E19", "DENIED", "read 1001", "relocate object")
	// After revoking B, A must still read while B is denied — the
	// single-process revocation bare capabilities cannot do.
	lines := strings.Split(out, "\n")
	found := false
	for _, l := range lines {
		if strings.Contains(l, "revoke B") && strings.Contains(l, "read 1001") && strings.Contains(l, "DENIED") {
			found = true
		}
	}
	if !found {
		t.Errorf("per-process revocation row missing:\n%s", out)
	}
}

func TestE20PagingThrashCurve(t *testing.T) {
	out := runOne(t, "E20", "demand-zero", "swap-ins", "clock")
	// The starved configuration must be slower than the ample one and
	// must actually page.
	var rows [][]string
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) == 6 && (f[0] == "64" || f[0] == "8") {
			rows = append(rows, f)
		}
	}
	if len(rows) != 2 {
		t.Fatalf("could not parse ample/starved rows:\n%s", out)
	}
	if rows[0][3] != "0" {
		t.Errorf("ample memory swapped in %s pages", rows[0][3])
	}
	if rows[1][3] == "0" {
		t.Error("starved memory did not swap")
	}
}

func TestE21SoftwareSwitch(t *testing.T) {
	out := runOne(t, "E21", "register traffic", "conventional total")
	var sw float64
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if strings.HasPrefix(l, "guarded pointers: save/restore") {
			sw = atofField(t, f[len(f)-1])
		}
	}
	if sw < 5 || sw > 60 {
		t.Errorf("software switch = %.1f cycles, expected tens (register traffic only)", sw)
	}
}

func TestE22TelemetryLayers(t *testing.T) {
	out := runOne(t, "E22", "noc.msgs", "domain-swap", "cache.l1.accesses", "disabled", "full-trace")
	if !strings.Contains(out, "ns/cycle") {
		t.Errorf("overhead table missing:\n%s", out)
	}
	// The rendered report must parse back into at least three tables
	// (metrics, event kinds, overhead) — this is what -json ships.
	tables := stats.ParseTables(out)
	if len(tables) < 3 {
		t.Fatalf("parsed %d tables from E22 report:\n%s", len(tables), out)
	}
}

func TestE22Metrics(t *testing.T) {
	e, ok := Lookup("E22")
	if !ok || e.Metrics == nil {
		t.Fatal("E22 must register a Metrics func")
	}
	snap, err := e.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	// One live counter from every subsystem layer, plus the overhead
	// figures the benchmark JSON records.
	for _, name := range []string{"machine.instructions", "cache.l1.accesses", "vm.translations", "noc.msgs"} {
		if snap.Get(name) <= 0 {
			t.Errorf("metric %s = %v, want > 0", name, snap.Get(name))
		}
	}
	for _, name := range []string{
		"telemetry.hotloop.ns_per_cycle.detached",
		"telemetry.hotloop.slowdown.disabled",
		"telemetry.hotloop.slowdown.full-trace",
	} {
		if snap.Get(name) <= 0 {
			t.Errorf("overhead figure %s missing", name)
		}
	}
}

func TestE23AuditZeroEscapes(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-injection campaign in -short mode")
	}
	out := runOne(t, "E23", "mem-bit", "reg-bit", "ptr-field", "tlb-entry",
		"noc-drop", "node-kill", "escaped", "checkpoint recovery")
	// The totals row carries the audit contract: zero escapes. runE23
	// itself errors on any escape, so reaching here means the campaign
	// was clean; still, assert the recovery line reports a match.
	if !strings.Contains(out, "fingerprint-match=true") {
		t.Errorf("recovery line missing or diverged:\n%s", out)
	}
	if len(stats.ParseTables(out)) < 2 {
		t.Errorf("expected audit + mechanism tables:\n%s", out)
	}
}

func TestE23Metrics(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-injection campaign in -short mode")
	}
	e, ok := Lookup("E23")
	if !ok || e.Metrics == nil {
		t.Fatal("E23 must register a Metrics func")
	}
	snap, err := e.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Get("faultinject.trials") < 10000 {
		t.Errorf("faultinject.trials = %v, want >= 10000", snap.Get("faultinject.trials"))
	}
	if snap.Get("faultinject.escaped") != 0 {
		t.Errorf("faultinject.escaped = %v, want 0", snap.Get("faultinject.escaped"))
	}
	if snap.Get("faultinject.recovery.match") != 1 {
		t.Errorf("faultinject.recovery.match = %v, want 1", snap.Get("faultinject.recovery.match"))
	}
}

func TestRunAllSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run in -short mode")
	}
	out, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 13; i++ {
		if !strings.Contains(out, "=== E") {
			t.Fatal("no experiment headers")
		}
	}
}

func TestE27CompiledTierCensus(t *testing.T) {
	out := runOne(t, "E27", "fib.s", "elided", "wl:sweep-sum", "bit-identical")
	// runE27 itself gates on bit-exact interp/jit agreement and on the
	// translator actually engaging; here we pin the corpus and require
	// the hot programs to show compiled blocks with elided checks.
	for _, name := range []string{"sieve.s", "usemem.s", "crosscheck.s",
		"wl:ptr-chase", "wl:alu-mix", "wl:derive", "wl:byte-ops"} {
		if !strings.Contains(out, name) {
			t.Errorf("E27 report missing program %q", name)
		}
	}
	if len(stats.ParseTables(out)) < 1 {
		t.Fatalf("E27 report has no parseable table:\n%s", out)
	}
}

func TestE25StaticDischarge(t *testing.T) {
	out := runOne(t, "E25", "fib.s", "discharged", "wl:sweep-sum")
	// runE25 itself errors if any program provably faults or hits the
	// abyss, and gates fib.s at >= 50% discharge; here we additionally
	// pin the corpus size: 4 shipped programs + 5 campaign workloads.
	for _, name := range []string{"sieve.s", "usemem.s", "crosscheck.s",
		"wl:ptr-chase", "wl:alu-mix", "wl:derive", "wl:byte-ops"} {
		if !strings.Contains(out, name) {
			t.Errorf("E25 report missing program %q", name)
		}
	}
}

func TestE28PersistentCheckpoints(t *testing.T) {
	out := runOne(t, "E28", "Delta-chain differential", "persist-torn", "persist-missing",
		"Capture cost", "match")
	// runE28 itself gates on every-generation fingerprint identity, zero
	// unrecovered/escaped persistence faults, and the >=5x byte win at
	// 10% dirty; here we pin the report shape.
	if strings.Contains(out, "DIVERGED") {
		t.Fatalf("E28 reports a diverged generation:\n%s", out)
	}
	if len(stats.ParseTables(out)) < 3 {
		t.Fatalf("E28 report missing tables:\n%s", out)
	}
}

func TestE29LiveMigration(t *testing.T) {
	out := runOne(t, "E29", "Live-migration differential", "abort@cutover", "Dirty-rate sweep",
		"migrate-src-kill", "stop-the-world")
	// runE29 itself gates on outcome identity for the commit, exact
	// bit-identity for every abort, the >=5x STW win at <=10% dirty,
	// and a zero-unrecovered fault campaign; here we pin report shape.
	if strings.Contains(out, "DIVERGED") {
		t.Fatalf("E29 reports a diverged scenario:\n%s", out)
	}
	if len(stats.ParseTables(out)) < 4 {
		t.Fatalf("E29 report missing tables:\n%s", out)
	}
}

func TestE29Metrics(t *testing.T) {
	e, ok := Lookup("E29")
	if !ok || e.Metrics == nil {
		t.Fatal("E29 has no metrics hook")
	}
	snap, err := e.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap["e29.diff.match"] != 1 {
		t.Errorf("e29.diff.match = %v, want 1", snap["e29.diff.match"])
	}
	if snap["e29.probe.rounds"] < 2 {
		t.Errorf("e29.probe.rounds = %v, want iterative pre-copy", snap["e29.probe.rounds"])
	}
	if snap["faultinject.migrate.retransmits"] == 0 {
		t.Error("campaign retransmit metric missing or zero")
	}
	if snap["e29.sweep.ratio_x10.10pct"] < 50 {
		t.Errorf("10%% dirty STW ratio %v < 5x", snap["e29.sweep.ratio_x10.10pct"])
	}
}

func TestE28Metrics(t *testing.T) {
	e, ok := Lookup("E28")
	if !ok || e.Metrics == nil {
		t.Fatal("E28 has no metrics hook")
	}
	snap, err := e.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap["e28.chain.match"] != 1 {
		t.Errorf("e28.chain.match = %v, want 1", snap["e28.chain.match"])
	}
	if snap["faultinject.persist.fallbacks"] == 0 {
		t.Error("campaign fallback metric missing or zero")
	}
	if snap["e28.cost.ratio_x10.10pct"] < 50 {
		t.Errorf("10%% dirty byte ratio %v < 5x", snap["e28.cost.ratio_x10.10pct"])
	}
}
