package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/multi"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/word"
)

func init() {
	registerWithMetrics("E26",
		"Observability — live introspection: latency histograms, causal NoC spans, flight recorder, and their cost",
		runE26, metricsE26)
}

// The two overhead workloads: a register-only fibonacci loop (pure
// issue bandwidth, no memory system) and a cache-line sweep (the memory
// path the TLB-refill histogram instruments). Both loop forever — the
// harness bounds them by cycle budget.
var e26FibSrc = `
fib:
	ldi r2, 1
	ldi r3, 0
	ldi r4, 32
inner:
	add  r5, r2, r3
	mov  r3, r2
	mov  r2, r5
	subi r4, r4, 1
	bnez r4, inner
	br fib
`

var e26SweepSrc = `
sweep:
	mov r4, r1
	ldi r3, 64
rd:
	ld   r5, r4, 0
	leai r4, r4, 8
	subi r3, r3, 1
	bnez r3, rd
	br sweep
`

// e26Modes are the introspection configurations whose cost E26 bounds:
// the seed machine, histograms only, flight ring only, and both — the
// "always-on" configuration the 2% budget applies to.
var e26Modes = []string{"baseline", "histograms", "flight", "hist+flight"}

// e26HotLoopNS times one workload under one introspection mode and
// returns wall nanoseconds per simulated cycle, best of four runs.
func e26HotLoopNS(src, mode string, cycles uint64) (float64, error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for rep := 0; rep < 4; rep++ {
		cfg := machine.MMachine()
		cfg.Clusters = 1
		cfg.SlotsPerCluster = 1
		cfg.PhysBytes = 4 << 20
		k, err := kernel.New(cfg)
		if err != nil {
			return 0, err
		}
		ip, err := k.LoadProgram(prog, false)
		if err != nil {
			return 0, err
		}
		seg, err := k.AllocSegment(4096)
		if err != nil {
			return 0, err
		}
		if _, err := k.Spawn(1, ip, map[int]word.Word{1: seg.Word()}); err != nil {
			return 0, err
		}
		switch mode {
		case "baseline":
		case "histograms":
			k.M.EnableHistograms()
		case "flight":
			k.M.Flight = telemetry.NewFlightRecorder(telemetry.DefaultFlightSize)
		case "hist+flight":
			k.M.EnableHistograms()
			k.M.Flight = telemetry.NewFlightRecorder(telemetry.DefaultFlightSize)
		default:
			return 0, fmt.Errorf("unknown mode %q", mode)
		}
		start := time.Now()
		k.Run(cycles)
		ns := float64(time.Since(start).Nanoseconds()) / float64(cycles)
		if rep == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// e26Overhead measures every (workload, mode) cell.
func e26Overhead() (map[string]map[string]float64, error) {
	const cycles = 500_000
	out := map[string]map[string]float64{}
	for wl, src := range map[string]string{"fib": e26FibSrc, "sweep": e26SweepSrc} {
		out[wl] = make(map[string]float64, len(e26Modes))
		for _, mode := range e26Modes {
			ns, err := e26HotLoopNS(src, mode, cycles)
			if err != nil {
				return nil, err
			}
			out[wl][mode] = ns
		}
	}
	return out, nil
}

// e26Instrumented runs the 2×2×2 multicomputer with the whole
// introspection stack live — histograms, causal spans, flight rings —
// under a remote-heavy workload, and returns the resulting latency
// distributions, span counts, and flight totals. Everything here is
// cycle-derived, so the tables are byte-identical run to run.
func e26Instrumented() (snap telemetry.Snapshot, hists map[string]*telemetry.Histogram,
	spans map[string]uint64, flightTotal uint64, cycles uint64, err error) {
	cfg := multi.DefaultConfig()
	cfg.Node.PhysBytes = 1 << 20
	cfg.Node.Clusters = 1
	cfg.Node.SlotsPerCluster = 4
	s, err := multi.New(cfg)
	if err != nil {
		return nil, nil, nil, 0, 0, err
	}
	s.EnableHistograms()
	s.EnableFlight(telemetry.DefaultFlightSize)
	tr := telemetry.NewTracer(1 << 16)
	tr.Enable(telemetry.EvSpanBegin, telemetry.EvSpanEnd)
	s.EnableSpans(tr)
	reg := telemetry.NewRegistry()
	s.RegisterMetrics(reg)

	remote, err := asm.Assemble(`
		ldi r3, 200
	loop:
		ld r2, r1, 0
		st r1, 8, r3
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	if err != nil {
		return nil, nil, nil, 0, 0, err
	}
	far, err := s.Nodes[7].K.AllocSegment(4096)
	if err != nil {
		return nil, nil, nil, 0, 0, err
	}
	for domain := 1; domain <= 2; domain++ {
		ip, err := s.Nodes[0].K.LoadProgram(remote, false)
		if err != nil {
			return nil, nil, nil, 0, 0, err
		}
		if _, err := s.Nodes[0].K.Spawn(domain, ip, map[int]word.Word{1: far.Word()}); err != nil {
			return nil, nil, nil, 0, 0, err
		}
	}

	cycles = s.Run(10_000_000)
	for _, th := range s.Nodes[0].K.M.Threads() {
		if th.State != machine.Halted {
			return nil, nil, nil, 0, 0, fmt.Errorf("thread %d: %v %v", th.ID, th.State, th.Fault)
		}
	}

	h := s.Nodes[0].K.M.Hists()
	hists = map[string]*telemetry.Histogram{
		"remote round-trip (node 0)": h.RemoteRT,
		"domain switch (node 0)":     h.DomainSwitch,
		// The refill cost lands on the home node's cache, where the
		// remote segment's pages are walked.
		"tlb refill (node 7)": s.Nodes[7].K.M.Cache.HistTLBRefill,
	}
	spans = make(map[string]uint64)
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case telemetry.EvSpanBegin:
			if ev.Parent == 0 {
				spans["root ("+ev.Detail+")"]++
			} else {
				spans["leg ("+ev.Detail+")"]++
			}
		case telemetry.EvSpanEnd:
			spans["completed"]++
		}
	}
	for _, n := range s.Nodes {
		flightTotal += n.K.M.Flight.Total()
	}
	return reg.Snapshot(), hists, spans, flightTotal, cycles, nil
}

// runE26 renders the introspection report: the latency distributions a
// live run produces, the causal-span census, and the wall-clock cost of
// leaving histograms and the flight recorder always on — the ≤2%
// budget that justifies "always on".
func runE26() (string, error) {
	snap, hists, spans, flightTotal, cycles, err := e26Instrumented()
	if err != nil {
		return "", err
	}
	var b strings.Builder

	ht := stats.NewTable(
		fmt.Sprintf("Latency distributions after an instrumented 8-node run (%d cycles)", cycles),
		"histogram", "count", "mean", "p50", "p95", "p99", "max")
	for _, name := range []string{
		"remote round-trip (node 0)", "domain switch (node 0)", "tlb refill (node 7)",
	} {
		h := hists[name]
		ht.AddRow(name, h.Count(), fmt.Sprintf("%.1f", h.Mean()),
			h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.Max())
	}
	b.WriteString(ht.String())

	st := stats.NewTable("\nCausal spans (one root per remote op, one leg per mesh crossing)", "span", "events")
	for _, k := range []string{
		"root (remote-read)", "root (remote-write)",
		"leg (read-req)", "leg (read-reply)", "leg (write-req)", "leg (write-ack)",
		"completed",
	} {
		if n, ok := spans[k]; ok {
			st.AddRow(k, n)
		}
	}
	b.WriteString(st.String())

	fmt.Fprintf(&b, "\nflight recorder: %d events captured across 8 node rings (bounded, always on)\n", flightTotal)
	fmt.Fprintf(&b, "metrics endpoint: %d series exported, node.<id>.* namespaced per node\n", len(snap))

	over, err := e26Overhead()
	if err != nil {
		return "", err
	}
	ot := stats.NewTable("\nSimulator wall-clock cost of always-on introspection (best of 4)",
		"workload", "configuration", "ns/cycle", "vs baseline")
	for _, wl := range []string{"fib", "sweep"} {
		for _, mode := range e26Modes {
			ot.AddRow(wl, mode, over[wl][mode], stats.Ratio(over[wl][mode], over[wl]["baseline"]))
		}
	}
	b.WriteString(ot.String())
	fmt.Fprintf(&b, "\nObserve is three atomic adds plus a CAS max and the flight ring is a fixed-size\n"+
		"copy under one uncontended mutex, so the hist+flight configuration is budgeted at\n"+
		"<=2%% over baseline (wall-clock rows vary with the host; the budget is the claim)\n")
	return b.String(), nil
}

// metricsE26 is the machine-readable face: the instrumented-run
// snapshot plus the overhead cells — what BENCH_obsv.json records.
func metricsE26() (telemetry.Snapshot, error) {
	snap, hists, spans, flightTotal, _, err := e26Instrumented()
	if err != nil {
		return nil, err
	}
	for name, h := range hists {
		slug := strings.NewReplacer(" ", "_", "(", "", ")", "").Replace(name)
		snap["obsv.hist."+slug+".count"] = float64(h.Count())
		snap["obsv.hist."+slug+".p50"] = float64(h.Quantile(0.5))
		snap["obsv.hist."+slug+".p99"] = float64(h.Quantile(0.99))
	}
	for k, n := range spans {
		slug := strings.NewReplacer(" ", "_", "(", "", ")", "").Replace(k)
		snap["obsv.spans."+slug] = float64(n)
	}
	snap["obsv.flight.events"] = float64(flightTotal)
	over, err := e26Overhead()
	if err != nil {
		return nil, err
	}
	for wl, modes := range over {
		for mode, ns := range modes {
			snap["obsv.hotloop.ns_per_cycle."+wl+"."+mode] = ns
		}
		if base := modes["baseline"]; base > 0 {
			for _, mode := range []string{"histograms", "flight", "hist+flight"} {
				snap["obsv.hotloop.slowdown."+wl+"."+mode] = modes[mode] / base
			}
		}
	}
	return snap, nil
}
