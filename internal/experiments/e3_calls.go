package experiments

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/word"
)

func init() {
	register("E3", "Fig. 3 — protected subsystem entry: enter pointers vs kernel call gates", runE3)
	register("E4", "Fig. 4 — two-way protection with a return segment", runE4)
}

func callConfig() machine.Config {
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	cfg.PhysBytes = 4 << 20
	return cfg
}

// measure runs a single-threaded workload for two iteration counts and
// returns the marginal cycles per iteration, cancelling setup cost.
func measure(build func(k *kernel.Kernel, iters int64) (*machine.Thread, error)) (float64, error) {
	run := func(iters int64) (uint64, error) {
		k, err := kernel.New(callConfig())
		if err != nil {
			return 0, err
		}
		th, err := build(k, iters)
		if err != nil {
			return 0, err
		}
		k.Run(100_000_000)
		if th.State != machine.Halted {
			return 0, fmt.Errorf("thread %v: %v", th.State, th.Fault)
		}
		return k.M.Stats().Cycles, nil
	}
	const n1, n2 = 200, 1200
	c1, err := run(n1)
	if err != nil {
		return 0, err
	}
	c2, err := run(n2)
	if err != nil {
		return 0, err
	}
	return float64(c2-c1) / float64(n2-n1), nil
}

// enterCaller builds a caller looping `iters` protected calls through
// the enter pointer in r1 (one-way protection, Fig. 3).
func enterCaller(k *kernel.Kernel, enter core.Pointer, iters int64) (*machine.Thread, error) {
	src := fmt.Sprintf(`
		ldi r15, %d
	loop:
		jmpl r14, r1
		subi r15, r15, 1
		bnez r15, loop
		halt
	`, iters)
	ip, err := loadSrc(k, src)
	if err != nil {
		return nil, err
	}
	return k.Spawn(1, ip, map[int]word.Word{1: enter.Word()})
}

func runE3() (string, error) {
	var b strings.Builder
	tbl := stats.NewTable("Protected subsystem call cost (Fig. 3 vs conventional)",
		"mechanism", "cycles/call", "vs empty loop")

	// Baseline: the bare loop.
	empty, err := measure(func(k *kernel.Kernel, iters int64) (*machine.Thread, error) {
		src := fmt.Sprintf("ldi r15, %d\nloop: subi r15, r15, 1\nbnez r15, loop\nhalt", iters)
		ip, err := loadSrc(k, src)
		if err != nil {
			return nil, err
		}
		return k.Spawn(1, ip, nil)
	})
	if err != nil {
		return "", err
	}
	tbl.AddRow("empty loop (baseline)", empty, 0.0)

	// 1. Minimal enter-pointer call: jump in, jump back.
	minimal, err := measure(func(k *kernel.Kernel, iters int64) (*machine.Thread, error) {
		minimalSub, err := asm.Assemble("entry: jmp r14")
		if err != nil {
			return nil, err
		}
		enter, err := k.InstallSubsystem(minimalSub, "entry", nil)
		if err != nil {
			return nil, err
		}
		return enterCaller(k, enter, iters)
	})
	if err != nil {
		return "", err
	}
	tbl.AddRow("enter pointer (minimal)", minimal, minimal-empty)

	// 2. Full Fig. 3 subsystem: loads two private data pointers from
	// its code segment and dereferences one.
	fig3, err := measure(func(k *kernel.Kernel, iters int64) (*machine.Thread, error) {
		d1, err := k.AllocSegment(256)
		if err != nil {
			return nil, err
		}
		d2, err := k.AllocSegment(256)
		if err != nil {
			return nil, err
		}
		sub, err := asm.Assemble(`
		entry:
			movip r10
			leab  r10, r10, r0
			ld    r11, r10, =gp1
			ld    r12, r10, =gp2
			ld    r13, r11, 0
			ldi   r11, 0
			ldi   r12, 0
			jmp   r14
		gp1:
			.word 0
		gp2:
			.word 0
		`)
		if err != nil {
			return nil, err
		}
		enter, err := k.InstallSubsystem(sub, "entry", map[string]core.Pointer{"gp1": d1, "gp2": d2})
		if err != nil {
			return nil, err
		}
		return enterCaller(k, enter, iters)
	})
	if err != nil {
		return "", err
	}
	tbl.AddRow("enter pointer (Fig. 3: load GP1, GP2, use, scrub)", fig3, fig3-empty)

	// 3. Conventional baseline: kernel-mediated call gate via TRAP.
	gateMin, err := measure(func(k *kernel.Kernel, iters int64) (*machine.Thread, error) {
		target, err := loadSrc(k, "jmp r14")
		if err != nil {
			return nil, err
		}
		id, err := k.RegisterGate(target)
		if err != nil {
			return nil, err
		}
		src := fmt.Sprintf(`
			ldi r15, %d
			ldi r2, %d
		loop:
			trap 3
			subi r15, r15, 1
			bnez r15, loop
			halt
		`, iters, id)
		ip, err := loadSrc(k, src)
		if err != nil {
			return nil, err
		}
		return k.Spawn(1, ip, nil)
	})
	if err != nil {
		return "", err
	}
	tbl.AddRow("kernel call gate (TRAP, minimal)", gateMin, gateMin-empty)

	b.WriteString(tbl.String())
	fmt.Fprintf(&b, "\nenter-pointer advantage over trap gate: %s (trap cost = %d cycles of pipeline drain + vector)\n",
		stats.Ratio(gateMin-empty, minimal-empty), callConfig().TrapCost)
	return b.String(), nil
}

// runE4 reproduces the Fig. 4 two-way protected call: the caller
// encapsulates its protection domain in a return segment, scrubs its
// registers, and recovers them through an enter pointer on return. Cost
// is measured as a function of the number of live pointers saved.
func runE4() (string, error) {
	tbl := stats.NewTable("Two-way protected call via return segment (Fig. 4)",
		"live pointers saved", "cycles/call", "instructions touched/call")

	for _, live := range []int{0, 2, 4, 6} {
		cpc, err := measure(func(k *kernel.Kernel, iters int64) (*machine.Thread, error) {
			return buildTwoWay(k, live, iters)
		})
		if err != nil {
			return "", err
		}
		// caller: live stores + live scrubs + jmp; stub: movip, leab,
		// live loads, ld retip, jmp; subsystem: jmp.
		instr := 2*live + 1 + (live + 4) + 1
		tbl.AddRow(live, cpc, instr)
	}
	return tbl.String() + "\nthe return segment encapsulates the caller's domain: the subsystem never sees a caller capability\n", nil
}

// buildTwoWay wires the full Fig. 4 structure: subsystem (segment 2),
// return segment (segment 3) holding the reload stub and save slots,
// and a caller that saves/scrubs `live` pointer registers per call.
// Register convention: r1 = ENTER2, r2 = r/w pointer to return segment,
// r13 = ENTER3 (the only capabilities the caller keeps across the
// call); r4.. hold the live pointers.
func buildTwoWay(k *kernel.Kernel, live int, iters int64) (*machine.Thread, error) {
	if live > 6 {
		// r4..r9 hold live pointers; r10 is the reload stub's base
		// scratch and r12..r15 are the call convention.
		return nil, fmt.Errorf("at most 6 live registers supported")
	}

	// Segment 2: the subsystem. Two-way protected: it returns by
	// jumping through the return-segment enter pointer in r13 and
	// never receives an execute pointer into the caller.
	ret2, err := asm.Assemble("entry: jmp r13")
	if err != nil {
		return nil, err
	}
	enter2, err := k.InstallSubsystem(ret2, "entry", nil)
	if err != nil {
		return nil, err
	}

	// Segment 3: the return segment — reload stub plus save slots.
	var stub strings.Builder
	stub.WriteString("stub:\n movip r10\n leab r10, r10, r0\n")
	for i := 0; i < live; i++ {
		fmt.Fprintf(&stub, " ld r%d, r10, =sv%d\n", 4+i, i)
	}
	stub.WriteString(" ld r14, r10, =svret\n jmp r14\n")
	for i := 0; i < live; i++ {
		fmt.Fprintf(&stub, "sv%d: .word 0\n", i)
	}
	stub.WriteString("svret: .word 0\n")
	retProg, err := asm.Assemble(stub.String())
	if err != nil {
		return nil, err
	}
	retSeg, err := k.AllocSegment(retProg.ByteSize())
	if err != nil {
		return nil, err
	}
	if err := k.WriteWords(retSeg, retProg.Words); err != nil {
		return nil, err
	}
	enter3, err := core.Make(core.PermEnterUser, retSeg.LogLen(), retSeg.Base())
	if err != nil {
		return nil, err
	}

	// The caller. Setup stores RETIP (provided in r12) into the return
	// segment once; each call saves the live pointers, scrubs them,
	// and enters the subsystem.
	var cs strings.Builder
	svretOff, err := retProg.LabelByte("svret")
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&cs, " ldi r15, %d\n st r2, %d, r12\n ldi r12, 0\n", iters, svretOff)
	cs.WriteString("loop:\n")
	for i := 0; i < live; i++ {
		off, err := retProg.LabelByte(fmt.Sprintf("sv%d", i))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&cs, " st r2, %d, r%d\n", off, 4+i)
	}
	for i := 0; i < live; i++ {
		fmt.Fprintf(&cs, " ldi r%d, 0\n", 4+i)
	}
	cs.WriteString(" jmp r1\nafter:\n subi r15, r15, 1\n bnez r15, loop\n halt\n")
	callerProg, err := asm.Assemble(cs.String())
	if err != nil {
		return nil, err
	}
	callerIP, err := k.LoadProgram(callerProg, false)
	if err != nil {
		return nil, err
	}
	afterOff, err := callerProg.LabelByte("after")
	if err != nil {
		return nil, err
	}
	retIP, err := core.LEAB(callerIP, int64(afterOff))
	if err != nil {
		return nil, err
	}

	// Live pointers the caller must protect.
	regs := map[int]word.Word{
		1:  enter2.Word(),
		2:  retSeg.Word(),
		13: enter3.Word(),
		12: retIP.Word(),
	}
	for i := 0; i < live; i++ {
		seg, err := k.AllocSegment(64)
		if err != nil {
			return nil, err
		}
		regs[4+i] = seg.Word()
	}
	return k.Spawn(1, callerIP, regs)
}
