package experiments

import (
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernel"
)

// loadSrc assembles src and loads it into k as an unprivileged program,
// returning the entry pointer. Assembly errors propagate like load
// errors — experiments never panic on a malformed source.
func loadSrc(k *kernel.Kernel, src string) (core.Pointer, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return core.Pointer{}, err
	}
	return k.LoadProgram(p, false)
}
