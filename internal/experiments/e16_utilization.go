package experiments

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/word"
)

func init() {
	register("E16", "Sec 1/3 motivation — multithreading recovers execution-unit utilization", runE16)
}

// ilpRich has three independent streams per iteration: the LIW cluster
// can fill its integer, memory and FP units from a single thread.
const ilpRich = `
	ldi r2, 400
loop:
	ld   r3, r1, 0    ; mem unit
	fadd r5, r6, r7   ; fp unit, independent
	addi r4, r4, 1    ; int unit, independent
	subi r2, r2, 1
	bnez r2, loop
	halt
`

// ilpPoor is a latency-bound serial walk: every load opens a new cache
// line (cold misses), and each iteration depends on the pointer
// increment, so a single thread spends most cycles stalled on the
// memory system with all three units idle.
const ilpPoor = `
	ldi r2, 400
loop:
	ld   r3, r1, 0    ; cold miss: ~11 cycles the thread just waits
	leai r1, r1, 32
	addi r4, r4, 1    ; dependent ALU chain: no intra-thread overlap
	addi r4, r4, 1
	addi r4, r4, 1
	addi r4, r4, 1
	addi r4, r4, 1
	addi r4, r4, 1
	addi r4, r4, 1
	addi r4, r4, 1
	subi r2, r2, 1
	bnez r2, loop
	halt
`

// runE16 reproduces the paper's opening motivation: "the current trend
// towards the use of multithreading as a method of increasing the
// utilization of execution units". On a LIW cluster, ILP-rich code
// fills the units from one thread; ILP-poor code cannot — but four
// interleaved threads (which guarded pointers allow to come from four
// different protection domains at no cost) recover the throughput.
func runE16() (string, error) {
	tbl := stats.NewTable("LIW cluster utilization: instructions/cycle (1 cluster, 3 units, wide issue)",
		"workload", "threads", "domains", "IPC", "issue width/packet")

	type cfg struct {
		name    string
		src     string
		threads int
	}
	cases := []cfg{
		{"ILP-rich, single thread", ilpRich, 1},
		{"latency-bound, single thread", ilpPoor, 1},
		{"latency-bound, 4 threads / 4 domains", ilpPoor, 4},
	}
	for _, c := range cases {
		ipc, width, err := utilizationRun(c.src, c.threads)
		if err != nil {
			return "", err
		}
		tbl.AddRow(c.name, c.threads, c.threads, ipc, width)
	}
	return tbl.String() + "\nwhen one thread lacks ILP the units idle; interleaving threads — from different protection\ndomains, for free under guarded pointers — restores utilization, the machine's design premise\n", nil
}

func utilizationRun(src string, threads int) (ipc, width float64, err error) {
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 4
	cfg.PhysBytes = 4 << 20
	cfg.WideIssue = true
	k, err := kernel.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < threads; i++ {
		ip, err := k.LoadProgram(prog, false)
		if err != nil {
			return 0, 0, err
		}
		seg, err := k.AllocSegment(16384)
		if err != nil {
			return 0, 0, err
		}
		if _, err := k.Spawn(k.NewDomain(), ip, map[int]word.Word{1: seg.Word()}); err != nil {
			return 0, 0, err
		}
	}
	k.Run(10_000_000)
	for _, th := range k.M.Threads() {
		if th.State != machine.Halted {
			return 0, 0, fmt.Errorf("thread %d: %v %v", th.ID, th.State, th.Fault)
		}
	}
	st := k.M.Stats()
	return float64(st.Instructions) / float64(st.Cycles),
		float64(st.Instructions) / float64(st.IssuePackets), nil
}
