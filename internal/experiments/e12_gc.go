package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/word"
	"repro/internal/workload"
)

func init() {
	register("E12", "Sec 4.3 claim — address-space GC via tag-bit reachability", runE12)
	register("E13", "Sec 5.2/5.3 claims — translation levels on the access path", runE13)
}

// runE12 measures garbage collection of the virtual address space: the
// kernel finds live segments by recursively chasing tagged words from
// the roots ("pointers are self identifying via the tag bit", Sec 4.3)
// and frees the rest.
func runE12() (string, error) {
	tbl := stats.NewTable("Address-space GC: tag-driven reachability over random segment graphs",
		"segments", "live fraction", "marked live", "freed", "words scanned", "scan/live-word")

	for _, n := range []int{64, 256, 1024} {
		for _, liveFrac := range []float64{0.25, 0.75} {
			row, err := gcRun(n, liveFrac)
			if err != nil {
				return "", err
			}
			tbl.AddRow(row...)
		}
	}
	return tbl.String() + "\nscan cost is proportional to the *live* heap only — dead segments are never touched,\nbecause the tag bit makes pointers self-identifying without type maps or conservative scanning\n", nil
}

func gcRun(nSegs int, liveFrac float64) ([]interface{}, error) {
	cfg := machine.MMachine()
	cfg.PhysBytes = 64 << 20
	k, err := kernel.New(cfg)
	if err != nil {
		return nil, err
	}
	rng := workload.NewRNG(uint64(nSegs)*7 + uint64(liveFrac*100))

	segs := make([]core.Pointer, nSegs)
	for i := range segs {
		p, err := k.AllocSegment(512)
		if err != nil {
			return nil, err
		}
		segs[i] = p
	}
	// Wire a random reachability graph: the first liveFrac segments
	// form the live set, chained from segment 0; each live segment
	// points at ~2 other live segments. Dead segments point at each
	// other (cycles don't rescue them).
	nLive := int(float64(nSegs) * liveFrac)
	if nLive < 1 {
		nLive = 1
	}
	for i := 0; i < nLive; i++ {
		for j := 0; j < 2; j++ {
			target := segs[rng.Intn(nLive)]
			if err := k.M.Space.WriteWord(segs[i].Base()+uint64(j)*8, target.Word()); err != nil {
				return nil, err
			}
		}
		if i+1 < nLive { // chain guarantees reachability
			if err := k.M.Space.WriteWord(segs[i].Base()+16, segs[i+1].Word()); err != nil {
				return nil, err
			}
		}
	}
	for i := nLive; i < nSegs; i++ {
		target := segs[nLive+rng.Intn(nSegs-nLive)]
		if err := k.M.Space.WriteWord(segs[i].Base(), target.Word()); err != nil {
			return nil, err
		}
	}

	st, err := k.CollectAddressSpace([]word.Word{segs[0].Word()})
	if err != nil {
		return nil, err
	}
	if st.LiveSegments != nLive || st.FreedSegments != nSegs-nLive {
		return nil, fmt.Errorf("GC marked %d/%d live, want %d/%d",
			st.LiveSegments, st.FreedSegments, nLive, nSegs-nLive)
	}
	liveWords := uint64(nLive) * 512 / word.BytesPerWord
	return []interface{}{
		nSegs, liveFrac, st.LiveSegments, st.FreedSegments, st.WordsScanned,
		fmt.Sprintf("%.2f", float64(st.WordsScanned)/float64(liveWords)),
	}, nil
}

// runE13 compares the number of translation/lookup steps each scheme
// places on the memory-access path (Secs 5.2, 5.3): guarded pointers
// need one translation, below the cache; segmentation and capability
// tables need two, with the first serialized before the access.
func runE13() (string, error) {
	costs := baseline.DefaultCosts()

	// Warm, cache-resident sweep: per-reference latency shows the
	// structural cost of each scheme with all misses amortized away.
	warm := workload.ArraySweep(0, 1<<30, 4096, 8, false)
	warm.Refs = append(warm.Refs, warm.Refs...) // second pass = warm

	tbl := stats.NewTable("Access-path structure (warm 32KB sweep, second pass resident)",
		"scheme", "translation levels", "lookups on hit path", "warm cycles/ref", "ports/bank")
	type rowSpec struct {
		m      baseline.Model
		levels string
		onHit  string
	}
	rows := []rowSpec{
		{baseline.NewGuarded(costs), "1 (on miss only)", "none"},
		{baseline.NewPageNoASID(costs), "1 (on miss only)", "none (but flushed per switch)"},
		{baseline.NewDomainPage(costs), "1 (on miss only)", "PLB probe"},
		{baseline.NewPageGroup(costs), "1 (every access)", "TLB + 4 group comparators"},
		{baseline.NewCapTable(costs), "2 (cap→VA, VA→PA)", "capability cache, serialized"},
	}
	for _, r := range rows {
		res := r.m.Run(warm)
		tbl.AddRow(res.Model, r.levels, r.onHit, res.CPR(), res.PortsPerBank)
	}
	return tbl.String() + "\ntwo-level translation (traditional capabilities) serializes an extra lookup before every\naccess — \"the additional latency ... has prevented traditional capabilities from becoming a\nwidely-used protection method\" (Sec 5.3); guarded pointers keep the hit path lookup-free\n", nil
}
