package experiments

import (
	"fmt"
	"reflect"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/capverify"
	"repro/internal/jit"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/word"
)

func init() {
	register("E27",
		"Check-eliding superblock translation — the compiled tier is architecturally invisible and elides statically-proven checks",
		runE27)
}

// e27Outcome is everything one run must reproduce bit for bit: the
// architectural fingerprint plus every counter the simulator publishes.
// Wall-clock is deliberately absent — the compiled tier buys host time,
// never simulated time.
type e27Outcome struct {
	fp       uint64
	stats    machine.Stats
	cache    cache.Stats
	tlb      vm.TLBStats
	space    vm.SpaceStats
	counters jit.Counters
}

// e27Fingerprint is faultinject's architectural FNV-1a fingerprint over
// the final thread states: ID, run state, instret, IP and the full
// register file with tag bits.
func e27Fingerprint(threads []*machine.Thread) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, t := range threads {
		mix(uint64(t.ID))
		mix(uint64(t.State))
		mix(t.Instret)
		mix(t.IP.Addr())
		for _, r := range t.Regs {
			mix(r.Bits)
			if r.Tag {
				mix(1)
			} else {
				mix(0)
			}
		}
	}
	return h
}

// e27Run boots the standard mmsim harness — one user thread, a 4 KB
// scratch segment in r1 — and runs prog to completion, optionally under
// the translator. Registration happens after Spawn, matching the
// loader's entry contract the verifier assumes (r1 = RW pointer to the
// data segment, all other registers unknown).
func e27Run(prog *asm.Program, useJIT bool) (e27Outcome, error) {
	const dataBytes = 4096
	var out e27Outcome
	k, err := kernel.New(machine.MMachine())
	if err != nil {
		return out, err
	}
	if useJIT {
		k.M.EnableJIT(jit.DefaultConfig())
	}
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		return out, err
	}
	seg, err := k.AllocSegment(dataBytes)
	if err != nil {
		return out, err
	}
	if _, err := k.Spawn(k.NewDomain(), ip, map[int]word.Word{1: seg.Word()}); err != nil {
		return out, err
	}
	if useJIT {
		k.M.JITRegister(prog, ip.Addr(), capverify.Config{DataBytes: dataBytes})
	}
	k.Run(5_000_000)
	out = e27Outcome{
		fp:    e27Fingerprint(k.M.Threads()),
		stats: k.M.Stats(),
		cache: k.M.Cache.Stats(),
		tlb:   k.M.Space.TLB.Stats(),
		space: k.M.Space.Stats(),
	}
	if useJIT {
		out.counters = k.M.JIT().Counters
	}
	return out, nil
}

// runE27 runs the full E25 corpus — every shipped program and every
// fault-injection campaign workload — through the interpreter and
// through the check-eliding superblock translator, gates on bit-exact
// agreement of fingerprint and machine/cache/TLB statistics, and
// tabulates the per-program compilation census: blocks compiled, block
// entries, and how many per-site capability checks the verifier's
// proofs let the translator elide versus retain.
func runE27() (string, error) {
	corpus, err := e25Corpus()
	if err != nil {
		return "", err
	}
	tbl := stats.NewTable("Compiled-tier census (interp vs translator, bit-exact gated)",
		"program", "blocks", "entries", "elided", "retained", "elide%", "match")

	anyCompiled := false
	var elided, retained uint64
	for _, p := range corpus {
		interp, err := e27Run(p.prog, false)
		if err != nil {
			return "", fmt.Errorf("e27: %s (interp): %v", p.name, err)
		}
		jitted, err := e27Run(p.prog, true)
		if err != nil {
			return "", fmt.Errorf("e27: %s (jit): %v", p.name, err)
		}
		if interp.fp != jitted.fp {
			return "", fmt.Errorf("e27: %s: architectural fingerprint diverges: interp %#x jit %#x",
				p.name, interp.fp, jitted.fp)
		}
		if interp.stats != jitted.stats {
			return "", fmt.Errorf("e27: %s: machine stats diverge:\ninterp %+v\njit    %+v",
				p.name, interp.stats, jitted.stats)
		}
		if !reflect.DeepEqual(interp.cache, jitted.cache) {
			return "", fmt.Errorf("e27: %s: cache stats diverge:\ninterp %+v\njit    %+v",
				p.name, interp.cache, jitted.cache)
		}
		if interp.tlb != jitted.tlb || interp.space != jitted.space {
			return "", fmt.Errorf("e27: %s: vm stats diverge:\ninterp %+v %+v\njit    %+v %+v",
				p.name, interp.tlb, interp.space, jitted.tlb, jitted.space)
		}
		c := jitted.counters
		if c.Compiled > 0 {
			anyCompiled = true
		}
		elided += c.ElidedSites
		retained += c.RetainedSites
		pct := "-"
		if c.ElidedSites+c.RetainedSites > 0 {
			pct = fmt.Sprintf("%.0f%%", 100*float64(c.ElidedSites)/float64(c.ElidedSites+c.RetainedSites))
		}
		tbl.AddRow(p.name, c.Compiled, c.Entries, c.ElidedSites, c.RetainedSites, pct, "yes")
	}
	if !anyCompiled {
		return "", fmt.Errorf("e27: no corpus program compiled a single block; the gate is vacuous")
	}
	if elided == 0 {
		return "", fmt.Errorf("e27: no check site was ever elided; the translator never used a proof")
	}

	var b []byte
	b = append(b, tbl.String()...)
	b = append(b, fmt.Sprintf("\nEvery run is bit-identical with the translator on and off — same\n"+
		"fingerprint, cycles, cache and TLB counters. Across the corpus the\n"+
		"verifier's proofs let compiled blocks elide %d capability-check\n"+
		"sites while %d stayed dynamic.\n", elided, retained)...)
	return string(b), nil
}
