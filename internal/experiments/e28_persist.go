package experiments

import (
	"bytes"
	"fmt"
	"os"
	"sync"

	"repro/internal/asm"
	"repro/internal/faultinject"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/persist"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/word"
)

func init() {
	registerWithMetrics("E28",
		"Robustness — incremental crash-safe checkpoints: delta chains restore bit-identically from every generation, damaged stores fall back, deltas beat full gob capture",
		runE28, metricsE28)
}

// E28 audits the durable checkpoint pipeline in three movements:
//
//  1. Chain differential — a live workload is captured as a base plus
//     deltas into an on-disk store; EVERY generation is then restored
//     (replaying its delta chain) and run to completion, and each
//     restored run must reproduce the uninterrupted run's architectural
//     fingerprint bit for bit.
//  2. Persistence-fault campaign — seeded torn writes, truncations,
//     bit rot and missing generations against a pristine store; the
//     gate is zero unrecovered stores and zero silent divergence.
//  3. Capture cost — on a wide memory footprint, the bytes a delta
//     writes at 1% / 10% / 50% dirty ratios versus a full gob image;
//     the gate is ≥ 5× cheaper at 10% dirty. (Wall-time for the same
//     comparison lives in the root benchmark suite → BENCH_persist.json;
//     tables gate only on deterministic byte counts.)

type e28ChainRow struct {
	gen   uint64
	kind  string
	pages int
	bytes uint64
	match bool
}

type e28Results struct {
	chain    []e28ChainRow
	allMatch bool
	campaign *faultinject.Result
	cost     []e28CostRow
}

type e28CostRow struct {
	pct        int
	dirtyPages int
	gobBytes   int
	deltaBytes int
	ratio      float64
}

var e28Once struct {
	sync.Once
	res *e28Results
	err error
}

func e28Result() (*e28Results, error) {
	e28Once.Do(func() {
		e28Once.res, e28Once.err = e28Compute()
	})
	return e28Once.res, e28Once.err
}

// e28Workload boots the store-heavy loop used for the chain
// differential: it keeps dirtying its data segment so every delta has
// real content.
func e28Workload() (*kernel.Kernel, *machine.Thread, error) {
	prog, err := asm.Assemble(`
		ldi r2, 160
		ldi r4, 0
	loop:
		ld   r5, r1, 0
		add  r5, r5, r2
		st   r1, 0, r5
		add  r4, r4, r5
		st   r1, 8, r4
		leai r6, r1, 16
		st   r6, 0, r6
		subi r2, r2, 1
		bnez r2, loop
		halt
	`)
	if err != nil {
		return nil, nil, err
	}
	cfg := machine.MMachine()
	cfg.Clusters = 2
	cfg.SlotsPerCluster = 2
	cfg.PhysBytes = 4 << 20
	cfg.TrapCost = 10
	k, err := kernel.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		return nil, nil, err
	}
	seg, err := k.AllocSegment(4096)
	if err != nil {
		return nil, nil, err
	}
	th, err := k.Spawn(3, ip, map[int]word.Word{1: seg.Word()})
	if err != nil {
		return nil, nil, err
	}
	return k, th, nil
}

func e28Chain() ([]e28ChainRow, bool, error) {
	const gens, baseEvery, stride = 6, 3, 70

	kRef, thRef, err := e28Workload()
	if err != nil {
		return nil, false, err
	}
	kRef.Run(1_000_000)
	if thRef.State != machine.Halted {
		return nil, false, fmt.Errorf("e28: reference run %v %v", thRef.State, thRef.Fault)
	}
	refFP := e27Fingerprint(kRef.M.Threads())

	dir, err := os.MkdirTemp("", "mme28-chain-")
	if err != nil {
		return nil, false, err
	}
	defer os.RemoveAll(dir)
	st, err := persist.Open(dir, 1)
	if err != nil {
		return nil, false, err
	}
	sv, err := persist.NewSaver(st, baseEvery)
	if err != nil {
		return nil, false, err
	}
	k, _, err := e28Workload()
	if err != nil {
		return nil, false, err
	}
	var cycle uint64
	for g := 0; g < gens; g++ {
		cycle += k.Run(stride)
		if k.M.Done() {
			return nil, false, fmt.Errorf("e28: workload finished before generation %d", g+1)
		}
		if _, err := sv.Capture(k, cycle); err != nil {
			return nil, false, err
		}
	}

	descs, err := st.Describe()
	if err != nil {
		return nil, false, err
	}
	cfg := machine.MMachine()
	cfg.Clusters = 2
	cfg.SlotsPerCluster = 2
	cfg.PhysBytes = 4 << 20
	cfg.TrapCost = 10
	var rows []e28ChainRow
	all := true
	for _, d := range descs {
		imgs, _, err := st.LoadImages(d.Gen)
		if err != nil {
			return nil, false, err
		}
		cps, _, err := st.LoadGeneration(d.Gen)
		if err != nil {
			return nil, false, err
		}
		k2, err := kernel.Restore(cfg, cps[0])
		if err != nil {
			return nil, false, err
		}
		k2.Run(1_000_000)
		match := k2.M.Done() && e27Fingerprint(k2.M.Threads()) == refFP
		all = all && match
		kind := "base"
		if d.Delta {
			kind = "delta"
		}
		rows = append(rows, e28ChainRow{
			gen: d.Gen, kind: kind,
			pages: len(imgs[0].Resident) + len(imgs[0].Swapped),
			bytes: d.Bytes, match: match,
		})
	}
	return rows, all, nil
}

// e28Cost builds a ~200-page resident footprint, then measures how many
// bytes a delta capture writes when 1%, 10% and 50% of the pages are
// dirty, against a full gob image of the same machine.
func e28Cost() ([]e28CostRow, error) {
	const pages = 200
	cfg := machine.MMachine()
	cfg.PhysBytes = 8 << 20
	k, err := kernel.New(cfg)
	if err != nil {
		return nil, err
	}
	seg, err := k.AllocSegment(pages * vm.PageSize)
	if err != nil {
		return nil, err
	}
	base := seg.Addr()
	s := k.M.Space
	// Dense data in every word: a zero-filled footprint would let gob's
	// omit-zero struct encoding shrink the full image to almost nothing
	// and make the comparison meaningless.
	for p := 0; p < pages; p++ {
		for w := 0; w < vm.PageSize/8; w++ {
			off := uint64(p)*vm.PageSize + uint64(w)*8
			if err := s.WriteWord(base+off, word.FromInt(int64(off*2654435761+1))); err != nil {
				return nil, err
			}
		}
	}
	_, st, err := k.CheckpointIncremental(nil) // arm the chain
	if err != nil {
		return nil, err
	}

	gobBytes := func() (int, error) {
		cp, err := k.Checkpoint()
		if err != nil {
			return 0, err
		}
		var buf bytes.Buffer
		if err := cp.Encode(&buf); err != nil {
			return 0, err
		}
		return buf.Len(), nil
	}

	var rows []e28CostRow
	for _, pct := range []int{1, 10, 50} {
		n := pages * pct / 100
		stridePages := pages / n
		for i := 0; i < n; i++ {
			addr := base + uint64(i*stridePages)*vm.PageSize
			if err := s.WriteWord(addr, word.FromInt(int64(pct*1000+i))); err != nil {
				return nil, err
			}
		}
		gb, err := gobBytes()
		if err != nil {
			return nil, err
		}
		cp, nst, err := k.CheckpointIncremental(st)
		if err != nil {
			return nil, err
		}
		st = nst
		if !cp.Delta || len(cp.Resident) != n {
			return nil, fmt.Errorf("e28: %d%% dirty captured %d pages, want %d", pct, len(cp.Resident), n)
		}
		var buf bytes.Buffer
		hdr := persist.Header{Gen: uint64(pct), Parent: uint64(pct) - 1, Delta: true}
		if err := persist.Encode(&buf, hdr, cp); err != nil {
			return nil, err
		}
		rows = append(rows, e28CostRow{
			pct: pct, dirtyPages: n, gobBytes: gb, deltaBytes: buf.Len(),
			ratio: float64(gb) / float64(buf.Len()),
		})
	}
	return rows, nil
}

func e28Compute() (*e28Results, error) {
	chain, all, err := e28Chain()
	if err != nil {
		return nil, err
	}
	campaign, err := faultinject.RunCampaign(faultinject.DefaultPersistCampaign())
	if err != nil {
		return nil, err
	}
	cost, err := e28Cost()
	if err != nil {
		return nil, err
	}
	return &e28Results{chain: chain, allMatch: all, campaign: campaign, cost: cost}, nil
}

func runE28() (string, error) {
	res, err := e28Result()
	if err != nil {
		return "", err
	}

	tbl := stats.NewTable("Delta-chain differential (restore every generation, run to completion)",
		"generation", "kind", "pages", "bytes", "fingerprint")
	for _, r := range res.chain {
		fp := "match"
		if !r.match {
			fp = "DIVERGED"
		}
		tbl.AddRow(fmt.Sprint(r.gen), r.kind, r.pages, int(r.bytes), fp)
	}
	out := tbl.String()

	out += "\n" + res.campaign.Table()

	ct := stats.NewTable("\nCapture cost: incremental delta vs full gob image (200-page footprint)",
		"dirty", "pages", "full gob B", "delta B", "ratio")
	for _, r := range res.cost {
		ct.AddRow(fmt.Sprintf("%d%%", r.pct), r.dirtyPages, r.gobBytes, r.deltaBytes,
			fmt.Sprintf("%.1fx", r.ratio))
	}
	out += ct.String()

	if !res.allMatch {
		return out, fmt.Errorf("e28: a restored generation diverged from the clean run")
	}
	if res.campaign.Detected != 0 {
		return out, fmt.Errorf("e28: %d unrecovered persistence faults (want 0)", res.campaign.Detected)
	}
	if res.campaign.Escaped != 0 {
		return out, fmt.Errorf("e28: %d escaped persistence faults (want 0)", res.campaign.Escaped)
	}
	for _, r := range res.cost {
		if r.pct == 10 && r.ratio < 5 {
			return out, fmt.Errorf("e28: delta at 10%% dirty only %.1fx cheaper than full gob (want ≥ 5x)", r.ratio)
		}
	}
	out += "\nevery generation of the delta chain restores to the clean fingerprint; every seeded\n" +
		"store damage (torn write, truncation, bit rot, missing generation) was either masked\n" +
		"or detected-and-recovered by falling back to an intact generation; and incremental\n" +
		"capture at 10% dirty writes the required ≥5x fewer bytes than a full gob image\n" +
		"(wall-time twin: make bench-persist → BENCH_persist.json)\n"
	return out, nil
}

func metricsE28() (telemetry.Snapshot, error) {
	res, err := e28Result()
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	res.campaign.RegisterMetrics(reg)
	match := uint64(0)
	if res.allMatch {
		match = 1
	}
	reg.Counter("e28.chain.generations", func() uint64 { return uint64(len(res.chain)) })
	reg.Counter("e28.chain.match", func() uint64 { return match })
	for _, r := range res.cost {
		ratio := uint64(r.ratio * 10)
		pct := r.pct
		reg.Counter(fmt.Sprintf("e28.cost.ratio_x10.%dpct", pct), func() uint64 { return ratio })
	}
	return reg.Snapshot(), nil
}
