package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/word"
)

func init() {
	register("E1", "Fig. 1 — guarded pointer format and permission semantics", runE1)
	register("E2", "Fig. 2 — pointer derivation (LEA) and the masked-comparator bounds check", runE2)
}

// runE1 reproduces Figure 1: the pointer word layout, the resulting
// address-space properties, and the rights matrix of the permission
// encodings of Sec 2.1, verified by exhaustive encode/decode round
// trips.
func runE1() (string, error) {
	var b strings.Builder

	layout := stats.NewTable("Pointer word layout (Fig. 1)",
		"field", "bits", "meaning")
	layout.AddRow("tag", 1, "pointer bit (65th); unforgeable, set only by SETPTR")
	layout.AddRow("permission", core.PermBits, "operation set permitted on the segment")
	layout.AddRow("seg length", core.LenBits, "log2 of segment length in bytes")
	layout.AddRow("address", core.AddrBits, "byte address in the single shared space")
	b.WriteString(layout.String())
	fmt.Fprintf(&b, "address space: 2^%d = %.2e bytes (paper: 1.8e16)\n",
		core.AddrBits, float64(core.AddressSpaceBytes))
	fmt.Fprintf(&b, "segment sizes: 2^0 .. 2^%d bytes, aligned on their length\n\n", core.MaxLogLen)

	rights := stats.NewTable("Permission rights matrix (Sec 2.1)",
		"permission", "load", "store", "jump-to", "modify", "priv")
	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return "-"
	}
	for p := core.PermKey; p < core.NumPerms; p++ {
		rights.AddRow(p.String(), yn(p.CanLoad()), yn(p.CanStore()),
			yn(p.CanJumpTo()), yn(p.Modifiable()), yn(p.Privileged()))
	}
	b.WriteString(rights.String())

	// Exhaustive round-trip validation across every permission and
	// segment length.
	trips := 0
	for p := core.PermKey; p < core.NumPerms; p++ {
		for l := uint(0); l <= core.MaxLogLen; l++ {
			addr := uint64(0x3db97f5a5a5a5) & core.AddrMask
			ptr, err := core.Make(p, l, addr)
			if err != nil {
				return "", err
			}
			back, err := core.Decode(ptr.Word())
			if err != nil || back != ptr {
				return "", fmt.Errorf("round trip failed for %v 2^%d", p, l)
			}
			trips++
		}
	}
	fmt.Fprintf(&b, "encode/decode round trips verified: %d (all perms × all lengths)\n", trips)
	fmt.Fprintf(&b, "tag storage overhead: %.2f%% (paper: 1.5%%)\n", 100*word.TagOverheadRatio)
	return b.String(), nil
}

// runE2 reproduces Figure 2: deriving new pointers with LEA, showing
// the masked comparator accepting every in-segment offset and faulting
// on every escape, plus the user-level cast sequences of Sec 2.2.
func runE2() (string, error) {
	var b strings.Builder
	seg, err := core.Make(core.PermReadWrite, 12, 0x40005a0) // 4KB at 0x4000000
	if err != nil {
		return "", err
	}

	tbl := stats.NewTable("LEA derivation from [rw 2^12 @0x4000000 +0x5a0] (Fig. 2)",
		"offset", "new address", "outcome")
	for _, off := range []int64{0, 8, -8, 0x200, -0x5a0, 0xa5f, 0xa60, -0x5a1, 1 << 20, -(1 << 20)} {
		q, err := core.LEA(seg, off)
		if err != nil {
			tbl.AddRow(fmt.Sprintf("%#x", off), "-", core.CodeOf(err).String()+" fault")
			continue
		}
		tbl.AddRow(fmt.Sprintf("%#x", off), fmt.Sprintf("%#x", q.Addr()), "ok")
	}
	b.WriteString(tbl.String())

	// Exhaustive sweep over a small segment: the comparator must admit
	// exactly the segment's bytes.
	small, err := core.Make(core.PermReadOnly, 6, 0x1000) // 64B
	if err != nil {
		return "", err
	}
	ok, faults := 0, 0
	for off := int64(-256); off <= 256; off++ {
		if q, err := core.LEA(small, off); err == nil {
			if !small.Contains(q.Addr()) {
				return "", fmt.Errorf("LEA escaped segment at offset %d", off)
			}
			ok++
		} else {
			faults++
		}
	}
	fmt.Fprintf(&b, "\nexhaustive sweep over 64B segment, offsets ±256: %d accepted, %d faulted (expected 64 accepted)\n", ok, faults)

	// The C cast sequences (Sec 2.2) built from LEAB.
	p, _ := core.LEA(seg, 0x10)
	asInt, err := core.PtrToInt(p)
	if err != nil {
		return "", err
	}
	back, err := core.IntToPtr(seg, asInt)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "pointer→int→pointer cast round trip: offset %#x, addresses match: %v\n",
		asInt, back.Addr() == p.Addr())
	return b.String(), nil
}
