package experiments

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/word"
)

func init() {
	register("E19", "Sec 4.3 — protected indirection: ACLs and relocation behind a subsystem", runE19)
}

// objectServer is the Sec 4.3 construction: "protected indirection can
// be implemented by requiring that all accesses to an object be made
// through a protected subsystem. … the subsystem can relocate the
// object at will and can implement arbitrary protection mechanisms,
// such as per-process access control lists."
//
// Callers present an unforgeable KEY pointer (their process identity)
// in r3 and a word index in r4; the server scans its private ACL and
// either performs the read (r5 = value, r6 = 0) or denies (r6 = 1).
// The object pointer lives in ONE private slot, so relocation updates
// one word; per-process revocation updates one ACL entry.
const objectServer = `
entry:
	movip r8
	leab  r8, r8, r0
	ld    r9,  r8, =aclp    ; private ACL segment
	ld    r10, r8, =objp    ; private object pointer (the single slot)
	ld    r11, r8, =nacl    ; ACL entry count
scan:
	ld    r12, r9, 0        ; entry key
	seq   r13, r12, r3      ; keys compare as full tagged words
	bnez  r13, found
	leai  r9, r9, 16
	subi  r11, r11, 1
	bnez  r11, scan
	br    denied
found:
	ld    r12, r9, 8        ; entry rights (1 = read)
	beqz  r12, denied
	shli  r13, r4, 3
	lea   r13, r10, r13     ; bounds-checked object indexing
	ld    r5,  r13, 0
	ldi   r6, 0
	br    out
denied:
	ldi   r5, 0
	ldi   r6, 1
out:
	ldi   r8, 0             ; scrub private capabilities
	ldi   r9, 0
	ldi   r10, 0
	ldi   r12, 0
	ldi   r13, 0
	jmp   r14
aclp:
	.word 0
objp:
	.word 0
nacl:
	.word 2
`

func runE19() (string, error) {
	var b strings.Builder
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 2
	cfg.PhysBytes = 4 << 20
	k, err := kernel.New(cfg)
	if err != nil {
		return "", err
	}

	// The object and its single indirection slot.
	obj, err := k.AllocSegment(512)
	if err != nil {
		return "", err
	}
	if err := k.WriteWords(obj, []word.Word{word.FromInt(1001), word.FromInt(1002)}); err != nil {
		return "", err
	}

	// Process identities: unforgeable keys (distinct addresses make
	// distinct keys; nothing can be done with them except comparison).
	keyA, err := core.Make(core.PermKey, 3, 0x100)
	if err != nil {
		return "", err
	}
	keyB, err := core.Make(core.PermKey, 3, 0x108)
	if err != nil {
		return "", err
	}

	// The private ACL: (key, rights) pairs.
	acl, err := k.AllocSegment(4096)
	if err != nil {
		return "", err
	}
	writeACL := func(entry int, key core.Pointer, rights int64) error {
		base := acl.Base() + uint64(entry*16)
		if err := k.M.Space.WriteWord(base, key.Word()); err != nil {
			return err
		}
		return k.M.Space.WriteWord(base+8, word.FromInt(rights))
	}
	if err := writeACL(0, keyA, 1); err != nil {
		return "", err
	}
	if err := writeACL(1, keyB, 1); err != nil {
		return "", err
	}

	prog, err := asm.Assemble(objectServer)
	if err != nil {
		return "", err
	}
	enter, err := k.InstallSubsystem(prog, "entry", map[string]core.Pointer{
		"aclp": acl, "objp": obj,
	})
	if err != nil {
		return "", err
	}
	objSlot, err := prog.LabelByte("objp")
	if err != nil {
		return "", err
	}
	serverSeg, err := core.Make(core.PermReadWrite, enter.LogLen(), enter.Base())
	if err != nil {
		return "", err
	}

	// call performs one mediated read as the given identity.
	call := func(key core.Pointer, index int64) (value int64, denied bool, err error) {
		src := fmt.Sprintf("ldi r4, %d\njmpl r14, r1\nhalt", index)
		ip, err := loadSrc(k, src)
		if err != nil {
			return 0, false, err
		}
		th, err := k.Spawn(k.NewDomain(), ip, map[int]word.Word{
			1: enter.Word(), 3: key.Word(),
		})
		if err != nil {
			return 0, false, err
		}
		k.Run(1_000_000)
		if th.State != machine.Halted {
			return 0, false, fmt.Errorf("caller: %v %v", th.State, th.Fault)
		}
		v, d := th.Reg(5).Int(), th.Reg(6).Int() == 1
		k.M.RemoveThread(th)
		return v, d, nil
	}

	report := func(who string, key core.Pointer) (string, error) {
		v, d, err := call(key, 0)
		if err != nil {
			return "", err
		}
		if d {
			return fmt.Sprintf("%s: DENIED", who), nil
		}
		return fmt.Sprintf("%s: read %d", who, v), nil
	}

	// Phase 1: both processes read.
	tbl := stats.NewTable("Object access mediated by the Sec 4.3 protected subsystem (per-process ACL)",
		"event", "process A", "process B")
	ra, err := report("A", keyA)
	if err != nil {
		return "", err
	}
	rb, err := report("B", keyB)
	if err != nil {
		return "", err
	}
	tbl.AddRow("initial ACL: both granted", strings.TrimPrefix(ra, "A: "), strings.TrimPrefix(rb, "B: "))

	// Phase 2: revoke ONLY process B — one ACL word. The paper: with
	// bare capabilities this is impossible without sweeping memory;
	// with protected indirection it is an ACL update.
	if err := writeACL(1, keyB, 0); err != nil {
		return "", err
	}
	ra, _ = report("A", keyA)
	rb, _ = report("B", keyB)
	tbl.AddRow("revoke B (1 word written)", strings.TrimPrefix(ra, "A: "), strings.TrimPrefix(rb, "B: "))

	// Phase 3: relocate the object — copy and update the single slot;
	// no address-space sweep.
	newObj, err := k.AllocSegment(512)
	if err != nil {
		return "", err
	}
	for off := uint64(0); off < 512; off += 8 {
		w, err := k.M.Space.ReadWord(obj.Base() + off)
		if err != nil {
			return "", err
		}
		if err := k.M.Space.WriteWord(newObj.Base()+off, w); err != nil {
			return "", err
		}
	}
	slotPtr, err := core.LEAB(serverSeg, int64(objSlot))
	if err != nil {
		return "", err
	}
	if err := k.M.Space.WriteWord(slotPtr.Addr(), newObj.Word()); err != nil {
		return "", err
	}
	if err := k.FreeSegment(obj); err != nil {
		return "", err
	}
	ra, _ = report("A", keyA)
	rb, _ = report("B", keyB)
	tbl.AddRow("relocate object (copy + 1 slot)", strings.TrimPrefix(ra, "A: "), strings.TrimPrefix(rb, "B: "))
	b.WriteString(tbl.String())

	// Cost: mediated vs direct access.
	mediated, err := measure(func(k *kernel.Kernel, iters int64) (*machine.Thread, error) {
		return buildMediatedLoop(k, iters)
	})
	if err != nil {
		return "", err
	}
	direct, err := measure(func(k *kernel.Kernel, iters int64) (*machine.Thread, error) {
		src := fmt.Sprintf("ldi r15, %d\nloop: ld r5, r1, 0\nsubi r15, r15, 1\nbnez r15, loop\nhalt", iters)
		ip, err := loadSrc(k, src)
		if err != nil {
			return nil, err
		}
		seg, err := k.AllocSegment(512)
		if err != nil {
			return nil, err
		}
		return k.Spawn(1, ip, map[int]word.Word{1: seg.Word()})
	})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\ncost: direct capability load %.1f cycles vs %.1f mediated (ACL scan + indirection) — use the\nsubsystem \"if the object must be relocated or have its access rights changed frequently and if\nthe object is referenced infrequently\" (Sec 4.3); otherwise raw capabilities win\n",
		direct, mediated)
	return b.String(), nil
}

// buildMediatedLoop sets up a caller looping mediated reads for the
// cost measurement.
func buildMediatedLoop(k *kernel.Kernel, iters int64) (*machine.Thread, error) {
	obj, err := k.AllocSegment(512)
	if err != nil {
		return nil, err
	}
	key, err := core.Make(core.PermKey, 3, 0x200)
	if err != nil {
		return nil, err
	}
	acl, err := k.AllocSegment(4096)
	if err != nil {
		return nil, err
	}
	if err := k.M.Space.WriteWord(acl.Base(), key.Word()); err != nil {
		return nil, err
	}
	if err := k.M.Space.WriteWord(acl.Base()+8, word.FromInt(1)); err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(objectServer)
	if err != nil {
		return nil, err
	}
	enter, err := k.InstallSubsystem(prog, "entry", map[string]core.Pointer{
		"aclp": acl, "objp": obj,
	})
	if err != nil {
		return nil, err
	}
	src := fmt.Sprintf(`
		ldi r15, %d
		ldi r4, 0
	loop:
		jmpl r14, r1
		subi r15, r15, 1
		bnez r15, loop
		halt
	`, iters)
	ip, err := loadSrc(k, src)
	if err != nil {
		return nil, err
	}
	return k.Spawn(1, ip, map[int]word.Word{1: enter.Word(), 3: key.Word()})
}
