package experiments

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/capverify"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/word"
)

func init() {
	register("E30",
		"Capability-flow analysis — the abstract store and call contexts discharge the checks register-only analysis retains, and the confinement pass pins every capability escape",
		runE30)
}

// e30LeakPrograms are crafted confinement violations: each leaks a
// capability out of a protection domain at a known line, and the
// experiment gates on the confinement pass naming exactly that site.
var e30LeakPrograms = []struct {
	name string
	src  string
	line int
	kind string
	reg  int
	dom  string
}{
	{"enter-store", `	movip r2
	ldi  r4, =sub
	leab r2, r2, r4
	ldi  r5, 6
	restrict r6, r2, r5
	jmp  r6
sub:
	st   r1, 0, r1
	halt
`, 8, "store", 1, "sub"},
	{"enter-crossing", `	movip r2
	ldi  r4, =sub
	leab r2, r2, r4
	ldi  r5, 6
	restrict r6, r2, r5
	jmp  r6
sub:
	halt
`, 6, "crossing", 1, "root"},
}

// e30Run boots prog under the standard mmsim contract (one user
// thread, 4 KB scratch segment in r1) and reports whether it halted
// cleanly.
func e30Run(prog *asm.Program) error {
	k, err := kernel.New(machine.MMachine())
	if err != nil {
		return err
	}
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		return err
	}
	seg, err := k.AllocSegment(4096)
	if err != nil {
		return err
	}
	th, err := k.Spawn(k.NewDomain(), ip, map[int]word.Word{1: seg.Word()})
	if err != nil {
		return err
	}
	k.Run(5_000_000)
	if th.State != machine.Halted || th.Fault != nil {
		return fmt.Errorf("ended %v (fault %v), want clean halt", th.State, th.Fault)
	}
	return nil
}

// runE30 is the whole-program capability-flow experiment. Over the full
// E25 corpus it verifies each program twice — once with the flow
// analysis (abstract store, affine relations, call contexts,
// confinement) and once register-only (the PR 5 baseline) — and gates:
//
//   - every *shipped* program discharges >= 90% of its check sites
//     under the flow analysis;
//   - the flow analysis never loses a register-only safety proof
//     (monotone safe counts), never invents a provable fault, never
//     falls into the abyss, and reports zero leaks on the clean corpus;
//   - every corpus program still halts cleanly on the real machine, so
//     the added precision is checked against ground truth;
//   - the crafted leak programs are each flagged at the exact escaping
//     instruction, with the right register and source domain.
func runE30() (string, error) {
	corpus, err := e25Corpus()
	if err != nil {
		return "", err
	}
	tbl := stats.NewTable("Flow analysis vs register-only baseline (per check site)",
		"program", "sites", "reg-only safe", "flow safe", "gained", "discharged")

	for _, p := range corpus {
		full := capverify.Verify(p.prog, capverify.Config{})
		reg := capverify.Verify(p.prog, capverify.Config{RegistersOnly: true})
		if full.HasFault() {
			return "", fmt.Errorf("e30: %s provably faults: %s", p.name, full.Faults()[0])
		}
		if full.Abyss {
			return "", fmt.Errorf("e30: %s: unbounded indirect jump (abyss)", p.name)
		}
		if len(full.Leaks) != 0 {
			return "", fmt.Errorf("e30: %s: unexpected confinement leak: %s", p.name, full.Leaks[0])
		}
		if full.Totals.Safe < reg.Totals.Safe {
			return "", fmt.Errorf("e30: %s: flow analysis lost precision (%d safe vs %d register-only)",
				p.name, full.Totals.Safe, reg.Totals.Safe)
		}
		shipped := !strings.HasPrefix(p.name, "wl:")
		if shipped && full.DischargeRatio() < 0.90 {
			return "", fmt.Errorf("e30: %s discharge ratio %.2f, want >= 0.90",
				p.name, full.DischargeRatio())
		}
		if err := e30Run(p.prog); err != nil {
			return "", fmt.Errorf("e30: %s: %v", p.name, err)
		}
		tbl.AddRow(p.name, full.Totals.Total(), reg.Totals.Safe, full.Totals.Safe,
			full.Totals.Safe-reg.Totals.Safe,
			fmt.Sprintf("%.0f%%", 100*full.DischargeRatio()))
	}

	conf := stats.NewTable("Confinement checker on crafted leak programs",
		"program", "site", "kind", "register", "domain")
	for _, lp := range e30LeakPrograms {
		rep, err := capverify.VerifySource(lp.name+".s", lp.src, capverify.Config{})
		if err != nil {
			return "", fmt.Errorf("e30: %s: %v", lp.name, err)
		}
		if rep.HasFault() {
			return "", fmt.Errorf("e30: %s: leak program misflagged as faulting: %s",
				lp.name, rep.Faults()[0])
		}
		found := false
		for _, l := range rep.Leaks {
			if l.Line == lp.line && l.Kind == lp.kind && l.Reg == lp.reg && l.Dom == lp.dom {
				found = true
				conf.AddRow(lp.name, fmt.Sprintf("%s:%d", l.File, l.Line), l.Kind,
					fmt.Sprintf("r%d", l.Reg), l.Dom)
			}
		}
		if !found {
			return "", fmt.Errorf("e30: %s: expected %s leak of r%d from %q at line %d, got %v",
				lp.name, lp.kind, lp.reg, lp.dom, lp.line, rep.Leaks)
		}
	}

	var b strings.Builder
	b.WriteString(tbl.String())
	b.WriteString("\n")
	b.WriteString(conf.String())
	b.WriteString("\nThe abstract store, affine relations and call contexts keep every\n" +
		"register-only proof and discharge the spill/reload and call-boundary\n" +
		"checks the baseline retains; every shipped program clears the 90%\n" +
		"gate and still halts cleanly. The confinement pass flags each crafted\n" +
		"escape at its exact store or crossing site with origin provenance.\n")
	return b.String(), nil
}
