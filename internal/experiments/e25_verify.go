package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/asm"
	"repro/internal/capverify"
	"repro/internal/faultinject"
	"repro/internal/stats"
)

func init() {
	register("E25",
		"Static verification — abstract interpretation discharges most dynamic capability checks before the program runs",
		runE25)
}

// repoRoot walks up from the working directory to the go.mod, so the
// experiment finds programs/ no matter where the test binary runs.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("e25: no go.mod above the working directory")
		}
		dir = parent
	}
}

// e25Program is one verified program: name plus assembled image.
type e25Program struct {
	name string
	prog *asm.Program
}

// e25Corpus gathers every shipped program (usemem.s linked against
// memlib.s, as it ships) and every fault-injection workload.
func e25Corpus() ([]e25Program, error) {
	root, err := repoRoot()
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(root, "programs")
	files, err := filepath.Glob(filepath.Join(dir, "*.s"))
	if err != nil || len(files) == 0 {
		return nil, fmt.Errorf("e25: no programs under %s: %v", dir, err)
	}
	var out []e25Program
	for _, f := range files {
		name := filepath.Base(f)
		if name == "memlib.s" {
			continue // linked into usemem.s below
		}
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var prog *asm.Program
		if name == "usemem.s" {
			lib, err := os.ReadFile(filepath.Join(dir, "memlib.s"))
			if err != nil {
				return nil, err
			}
			m1, err := asm.AssembleModule("usemem", string(src))
			if err != nil {
				return nil, fmt.Errorf("e25: %s: %v", name, err)
			}
			m2, err := asm.AssembleModule("memlib", string(lib))
			if err != nil {
				return nil, fmt.Errorf("e25: memlib.s: %v", err)
			}
			prog, err = asm.Link(m1, m2)
			if err != nil {
				return nil, fmt.Errorf("e25: %s: %v", name, err)
			}
		} else {
			prog, err = asm.AssembleNamed(name, string(src))
			if err != nil {
				return nil, fmt.Errorf("e25: %s: %v", name, err)
			}
		}
		out = append(out, e25Program{name: name, prog: prog})
	}
	workloads := faultinject.WorkloadSources()
	names := make([]string, 0, len(workloads))
	for n := range workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		prog, err := asm.AssembleNamed(n+".s", workloads[n])
		if err != nil {
			return nil, fmt.Errorf("e25: workload %s: %v", n, err)
		}
		out = append(out, e25Program{name: "wl:" + n, prog: prog})
	}
	return out, nil
}

// runE25 verifies the full program corpus and tabulates, per program,
// how many of the hardware's dynamic check sites the abstract
// interpretation proves safe (a trusting compiler could elide them),
// how many stay dynamic, and how many provably fault. The gates: no
// shipped program or campaign workload may provably fault, and fib.s —
// the paper's running example of pointer-walking code — must discharge
// at least half of its checks statically.
func runE25() (string, error) {
	corpus, err := e25Corpus()
	if err != nil {
		return "", err
	}
	tbl := stats.NewTable("Static discharge of guarded-pointer checks (per check site)",
		"program", "sites", "safe", "dynamic", "fault", "discharged")

	var fibRatio float64
	fibSeen := false
	for _, p := range corpus {
		rep := capverify.Verify(p.prog, capverify.Config{})
		if rep.HasFault() {
			return "", fmt.Errorf("e25: %s provably faults: %s", p.name, rep.Faults()[0])
		}
		if rep.Abyss {
			return "", fmt.Errorf("e25: %s: unbounded indirect jump (abyss)", p.name)
		}
		if p.name == "fib.s" {
			fibRatio, fibSeen = rep.DischargeRatio(), true
		}
		tbl.AddRow(p.name, rep.Totals.Total(), rep.Totals.Safe, rep.Totals.Unknown,
			rep.Totals.Fault, fmt.Sprintf("%.0f%%", 100*rep.DischargeRatio()))
	}
	if !fibSeen {
		return "", fmt.Errorf("e25: fib.s missing from corpus")
	}
	if fibRatio < 0.5 {
		return "", fmt.Errorf("e25: fib.s discharge ratio %.2f, want >= 0.5", fibRatio)
	}

	var b []byte
	b = append(b, tbl.String()...)
	b = append(b, fmt.Sprintf("\nEvery program is verifiably free of provable capability faults;\n"+
		"check sites proven safe need no hardware check on that path. fib.s\n"+
		"discharges %.0f%% of its checks, against the >= 50%% gate.\n", 100*fibRatio)...)
	return string(b), nil
}
