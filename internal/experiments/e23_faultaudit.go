package experiments

import (
	"fmt"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

func init() {
	registerWithMetrics("E23",
		"Robustness — deterministic fault-injection campaign: protection audit and checkpoint recovery",
		runE23, metricsE23)
}

// e23Campaign runs the default audit once per process: >10k seeded
// injections across ten fault classes plus the checkpoint/kill/restore
// recovery exercise. Cached so -json runs don't pay for it twice.
var e23Once struct {
	sync.Once
	res *faultinject.Result
	err error
}

func e23Result() (*faultinject.Result, error) {
	e23Once.Do(func() {
		e23Once.res, e23Once.err = faultinject.RunCampaign(faultinject.DefaultCampaign())
	})
	return e23Once.res, e23Once.err
}

// runE23 is the protection audit the paper's protection model invites:
// if every pointer is guarded and every plane is checked, a soft error
// anywhere in the system must surface as an explicit detection (parity,
// link CRC, machine check, watchdog, scrub) or be provably masked —
// never a silent divergence. The campaign is replayable: the table is a
// pure function of the seed.
func runE23() (string, error) {
	res, err := e23Result()
	if err != nil {
		return "", err
	}
	out := res.Table()
	if res.Escaped != 0 {
		return out, fmt.Errorf("fault-injection audit: %d escapes (want 0)", res.Escaped)
	}
	if res.Recovery != nil && !res.Recovery.Match {
		return out, fmt.Errorf("checkpoint recovery diverged: %s", res.Recovery)
	}
	out += "\nevery injection was either explicitly detected (tag/parity machine check, link CRC,\n" +
		"cycle-deadline watchdog, end-of-run scrub) or provably masked (fingerprint equal to the\n" +
		"uninjected run); a killed node was detected by the watchdog and resumed from a kernel\n" +
		"checkpoint with a bit-identical architectural fingerprint\n"
	return out, nil
}

func metricsE23() (telemetry.Snapshot, error) {
	res, err := e23Result()
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	res.RegisterMetrics(reg)
	return reg.Snapshot(), nil
}
