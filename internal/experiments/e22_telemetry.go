package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/multi"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/word"
)

func init() {
	registerWithMetrics("E22",
		"Observability — unified telemetry: metric namespace, event trace, disabled-path overhead",
		runE22, metricsE22)
}

// e22Instrumented boots the 2×2×2 multicomputer with the full telemetry
// stack attached to node 0 and the mesh, runs a mixed workload (two
// domains issuing remote dependent loads to node 7 plus one domain
// sweeping a local segment), and returns the metrics snapshot and the
// per-kind event counts from the trace.
func e22Instrumented() (telemetry.Snapshot, map[string]uint64, uint64, error) {
	cfg := multi.DefaultConfig()
	cfg.Node.PhysBytes = 1 << 20
	cfg.Node.Clusters = 1
	cfg.Node.SlotsPerCluster = 4
	s, err := multi.New(cfg)
	if err != nil {
		return nil, nil, 0, err
	}

	tr := telemetry.NewTracer(1 << 16)
	tr.EnableAll()
	s.Nodes[0].K.SetTracer(tr)
	s.Net.Tracer = tr

	reg := telemetry.NewRegistry()
	s.Nodes[0].K.RegisterMetrics(reg)
	s.Net.RegisterMetrics(reg, "noc")

	remote, err := asm.Assemble(`
		ldi r3, 200
	loop:
		ld r2, r1, 0
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	if err != nil {
		return nil, nil, 0, err
	}
	local, err := asm.Assemble(`
		ldi r3, 256
	loop:
		ld   r5, r1, 0
		leai r1, r1, 8
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	if err != nil {
		return nil, nil, 0, err
	}

	far, err := s.Nodes[7].K.AllocSegment(4096)
	if err != nil {
		return nil, nil, 0, err
	}
	for domain := 1; domain <= 2; domain++ {
		ip, err := s.Nodes[0].K.LoadProgram(remote, false)
		if err != nil {
			return nil, nil, 0, err
		}
		if _, err := s.Nodes[0].K.Spawn(domain, ip, map[int]word.Word{1: far.Word()}); err != nil {
			return nil, nil, 0, err
		}
	}
	near, err := s.Nodes[0].K.AllocSegment(4096)
	if err != nil {
		return nil, nil, 0, err
	}
	ip, err := s.Nodes[0].K.LoadProgram(local, false)
	if err != nil {
		return nil, nil, 0, err
	}
	if _, err := s.Nodes[0].K.Spawn(3, ip, map[int]word.Word{1: near.Word()}); err != nil {
		return nil, nil, 0, err
	}

	cycles := s.Run(10_000_000)
	for _, th := range s.Nodes[0].K.M.Threads() {
		if th.State != machine.Halted {
			return nil, nil, 0, fmt.Errorf("thread %d: %v %v", th.ID, th.State, th.Fault)
		}
	}

	counts := make(map[string]uint64)
	for _, ev := range tr.Events() {
		counts[ev.Kind.String()]++
	}
	return reg.Snapshot(), counts, cycles, nil
}

// e22HotLoopNS times the simulator's plain cycle loop (the
// BenchmarkSimulatorIPS workload) under one telemetry configuration and
// returns wall nanoseconds per simulated cycle, best of four runs.
func e22HotLoopNS(mode string, cycles uint64) (float64, error) {
	prog, err := asm.Assemble(`
	loop:
		addi r2, r2, 1
		br loop
	`)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for rep := 0; rep < 4; rep++ {
		cfg := machine.MMachine()
		cfg.Clusters = 1
		cfg.SlotsPerCluster = 1
		cfg.PhysBytes = 4 << 20
		k, err := kernel.New(cfg)
		if err != nil {
			return 0, err
		}
		ip, err := k.LoadProgram(prog, false)
		if err != nil {
			return 0, err
		}
		if _, err := k.Spawn(1, ip, nil); err != nil {
			return 0, err
		}
		switch mode {
		case "detached":
			// no tracer at all: the seed configuration
		case "disabled":
			k.SetTracer(telemetry.NewTracer(1 << 10)) // attached, every kind masked off
		case "events":
			tr := telemetry.NewTracer(1 << 10)
			tr.EnableAll()
			tr.Disable(telemetry.EvInstr) // protection/memory events only
			k.SetTracer(tr)
		case "full-trace":
			tr := telemetry.NewTracer(1 << 10)
			tr.EnableAll() // per-instruction events incl. disassembly
			k.SetTracer(tr)
		default:
			return 0, fmt.Errorf("unknown mode %q", mode)
		}
		start := time.Now()
		k.Run(cycles)
		ns := float64(time.Since(start).Nanoseconds()) / float64(cycles)
		if rep == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

var e22Modes = []string{"detached", "disabled", "events", "full-trace"}

func e22Overhead() (map[string]float64, error) {
	const cycles = 500_000
	out := make(map[string]float64, len(e22Modes))
	for _, mode := range e22Modes {
		ns, err := e22HotLoopNS(mode, cycles)
		if err != nil {
			return nil, err
		}
		out[mode] = ns
	}
	return out, nil
}

// runE22 exercises the telemetry layer end to end: the metric namespace
// over a real multicomputer run, the event trace broken down by kind,
// and the cost of carrying the instrumentation — in particular that a
// tracer which is attached but disabled stays close to the tracer-free
// simulator (the <5% disabled-path budget).
func runE22() (string, error) {
	snap, kinds, cycles, err := e22Instrumented()
	if err != nil {
		return "", err
	}
	var b strings.Builder

	mt := stats.NewTable(
		fmt.Sprintf("Metric namespace after an instrumented 8-node run (%d cycles, node 0 + mesh)", cycles),
		"metric", "value")
	for _, name := range []string{
		"machine.cycles", "machine.instructions", "machine.ipc", "machine.switches",
		"machine.domain_swaps", "cache.l1.accesses", "cache.l1.misses",
		"vm.translations", "vm.tlb.hits", "vm.tlb.misses",
		"kernel.segments_allocated", "noc.msgs", "noc.mean_latency",
	} {
		mt.AddRow(name, snap.Get(name))
	}
	b.WriteString(mt.String())

	et := stats.NewTable("\nCycle-stamped event trace, by kind", "kind", "events")
	var names []string
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		et.AddRow(k, kinds[k])
	}
	b.WriteString(et.String())

	over, err := e22Overhead()
	if err != nil {
		return "", err
	}
	ot := stats.NewTable("\nSimulator wall-clock cost of telemetry on the cycle-loop hot path (best of 4)",
		"configuration", "ns/cycle", "vs detached")
	for _, mode := range e22Modes {
		ot.AddRow(mode, over[mode], stats.Ratio(over[mode], over["detached"]))
	}
	b.WriteString(ot.String())
	fmt.Fprintf(&b, "\nevery emit site is gated on Tracer.Enabled, so the disabled tracer costs one atomic\n"+
		"mask load per potential event; full instruction tracing pays for Event construction\n"+
		"and disassembly, which is why -trace/-trace-out are opt-in flags\n")
	return b.String(), nil
}

// metricsE22 is the machine-readable face of the experiment: the full
// instrumented-run snapshot plus the measured overhead figures, which
// is what BENCH_telemetry.json records.
func metricsE22() (telemetry.Snapshot, error) {
	snap, kinds, _, err := e22Instrumented()
	if err != nil {
		return nil, err
	}
	for k, n := range kinds {
		snap["trace.events."+k] = float64(n)
	}
	over, err := e22Overhead()
	if err != nil {
		return nil, err
	}
	for mode, ns := range over {
		snap["telemetry.hotloop.ns_per_cycle."+mode] = ns
	}
	if base := over["detached"]; base > 0 {
		for _, mode := range []string{"disabled", "events", "full-trace"} {
			snap["telemetry.hotloop.slowdown."+mode] = over[mode] / base
		}
	}
	return snap, nil
}
