package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/buddy"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("E7", "Sec 4.1 / 5.1 claims — storage overhead: tag bit vs protection tables", runE7)
	register("E8", "Sec 4.2 claim — buddy allocation and power-of-two fragmentation", runE8)
}

// runE7 measures the two storage claims: the fixed ~1.5% tag-bit cost
// of guarded pointers (Sec 4.1) against the n×m growth of per-process
// translation/protection state when n pages are shared among m
// processes (Sec 5.1).
func runE7() (string, error) {
	var b strings.Builder

	// Tag-plane cost on the M-Machine's own memory.
	m := mem.New(8 << 20)
	fmt.Fprintf(&b, "tag plane for the 8MB M-Machine node memory: %d bytes = %.2f%% (paper: 1.5%%)\n\n",
		m.OverheadBytes(), 100*float64(m.OverheadBytes())/float64(m.Size()))

	const sharedPages = 1024
	costs := baseline.DefaultCosts()
	tbl := stats.NewTable(
		fmt.Sprintf("Protection state for %d pages (4MB) shared among m processes", sharedPages),
		"m", "guarded (tag share)", "page tables (n×m PTEs)", "domain-page prot entries", "capability C-lists")
	for _, procs := range []int{1, 2, 4, 8, 16, 32} {
		tr := workload.Shared(procs, sharedPages, 1, 1<<30)
		dp, _ := tr.Pages()
		// Guarded pointers: the shared data costs its tag plane only —
		// and each process holds one 8-byte pointer.
		guarded := baseline.TagOverheadBytes(sharedPages*4096) + uint64(procs)*8
		tbl.AddRow(procs,
			fmt.Sprintf("%d B", guarded),
			fmt.Sprintf("%d B", uint64(dp)*costs.PTEBytes),
			fmt.Sprintf("%d B", uint64(dp)*costs.ProtBytes),
			fmt.Sprintf("%d B", uint64(dp)*costs.SegDescBytes))
	}
	b.WriteString(tbl.String())
	b.WriteString("\nguarded-pointer state is constant in m (one tag plane + one pointer per sharer);\ntable-based schemes replicate an entry per (process, page) — the n×m blowup of Sec 5.1\n")
	return b.String(), nil
}

// runE8 reproduces the Sec 4.2 fragmentation analysis: power-of-two
// segments cause internal fragmentation, and a buddy allocator bounds
// external fragmentation by coalescing.
func runE8() (string, error) {
	var b strings.Builder
	tbl := stats.NewTable("Buddy allocation under three request distributions (2^24-byte region, 100k ops, 50% frees)",
		"distribution", "internal frag", "external frag", "failed allocs", "splits", "merges")

	for _, dist := range []workload.SizeDist{
		workload.SizesUniformLog, workload.SizesSmallObjects, workload.SizesPowersOfTwo,
	} {
		res, err := fragmentationRun(dist, 100_000)
		if err != nil {
			return "", err
		}
		tbl.AddRow(dist.String(),
			fmt.Sprintf("%.1f%%", 100*res.internal),
			fmt.Sprintf("%.1f%%", 100*res.external),
			res.failed, res.splits, res.merges)
	}
	b.WriteString(tbl.String())
	b.WriteString("\ninternal fragmentation is bounded (<50%, ~25% expected for uniform sizes) and vanishes for\npower-of-two requests; buddy coalescing keeps external fragmentation from compounding (Sec 4.2)\n")
	return b.String(), nil
}

type fragResult struct {
	internal, external float64
	failed             uint64
	splits, merges     uint64
}

func fragmentationRun(dist workload.SizeDist, ops int) (fragResult, error) {
	a, err := newFragAllocator()
	if err != nil {
		return fragResult{}, err
	}
	rng := workload.NewRNG(uint64(dist) + 17)
	sizes := workload.Sizes(rng, dist, ops, 4, 16)
	var live []uint64
	for _, sz := range sizes {
		if len(live) > 0 && rng.Float64() < 0.5 {
			i := rng.Intn(len(live))
			if err := a.Free(live[i]); err != nil {
				return fragResult{}, err
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		addr, _, err := a.AllocBytes(sz)
		if err != nil {
			continue // counted by the allocator as a failure
		}
		live = append(live, addr)
	}
	st := a.Stats()
	return fragResult{
		internal: st.InternalFragmentation(),
		external: a.ExternalFragmentation(),
		failed:   st.FailedAllocs,
		splits:   st.Splits,
		merges:   st.Merges,
	}, nil
}

func newFragAllocator() (*buddy.Allocator, error) {
	return buddy.New(0, 24, 3)
}
