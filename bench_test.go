// Benchmarks regenerating every reproduced figure/claim of the paper
// (one benchmark per experiment in DESIGN.md's index). Run with:
//
//	go test -bench=. -benchmem
//
// The cycle-level results these correspond to are printed by
// cmd/experiments; the benchmarks here measure the *simulator's* cost
// of regenerating each artifact, plus microbenchmarks of the core
// pointer operations (the combinational paths that a real MAP
// implements in hardware).
package repro

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/buddy"
	"repro/internal/capverify"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/jit"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/multi"
	"repro/internal/noc"
	"repro/internal/telemetry"
	"repro/internal/word"
	"repro/internal/workload"
)

// --- core pointer operations (Fig. 1 / Fig. 2 hardware paths) ---------

func BenchmarkE1_PointerDecode(b *testing.B) {
	w := mustMake(core.PermReadWrite, 12, 0x5a5a5a0).Word()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decode(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_CheckLoad(b *testing.B) {
	w := mustMake(core.PermReadWrite, 12, 0x5a5a000).Word()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.CheckLoad(w, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_LEA(b *testing.B) {
	p := mustMake(core.PermReadWrite, 20, 1<<30)
	var sink core.Pointer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := core.LEA(p, int64(i&0xffff))
		if err != nil {
			b.Fatal(err)
		}
		sink = q
	}
	_ = sink
}

func BenchmarkE2_LEAFaultPath(b *testing.B) {
	p := mustMake(core.PermReadWrite, 6, 0x1000)
	for i := 0; i < b.N; i++ {
		if _, err := core.LEA(p, 1<<20); err == nil {
			b.Fatal("expected fault")
		}
	}
}

func BenchmarkE2_Restrict(b *testing.B) {
	p := mustMake(core.PermReadWrite, 12, 0x4000)
	for i := 0; i < b.N; i++ {
		if _, err := core.Restrict(p, core.PermReadOnly); err != nil {
			b.Fatal(err)
		}
	}
}

// --- machine-level artifacts -------------------------------------------

// benchMachineLoop builds and runs a kernel workload once per
// iteration.
func benchKernelProgram(b *testing.B, src string, segBytes uint64) {
	b.Helper()
	prog := mustAssemble(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := machine.MMachine()
		cfg.Clusters = 1
		cfg.SlotsPerCluster = 1
		cfg.PhysBytes = 4 << 20
		k, err := kernel.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ip, err := k.LoadProgram(prog, false)
		if err != nil {
			b.Fatal(err)
		}
		regs := map[int]word.Word{}
		if segBytes > 0 {
			seg, err := k.AllocSegment(segBytes)
			if err != nil {
				b.Fatal(err)
			}
			regs[1] = seg.Word()
		}
		th, err := k.Spawn(1, ip, regs)
		if err != nil {
			b.Fatal(err)
		}
		k.Run(10_000_000)
		if th.State != machine.Halted {
			b.Fatalf("%v: %v", th.State, th.Fault)
		}
	}
}

func BenchmarkE3_ProtectedCall(b *testing.B) {
	prog := mustAssemble("entry: jmp r14")
	caller := mustAssemble(`
		ldi r15, 100
	loop:
		jmpl r14, r1
		subi r15, r15, 1
		bnez r15, loop
		halt
	`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := machine.MMachine()
		cfg.Clusters = 1
		cfg.SlotsPerCluster = 1
		cfg.PhysBytes = 4 << 20
		k, err := kernel.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		enter, err := k.InstallSubsystem(prog, "entry", nil)
		if err != nil {
			b.Fatal(err)
		}
		ip, err := k.LoadProgram(caller, false)
		if err != nil {
			b.Fatal(err)
		}
		th, err := k.Spawn(1, ip, map[int]word.Word{1: enter.Word()})
		if err != nil {
			b.Fatal(err)
		}
		k.Run(1_000_000)
		if th.State != machine.Halted {
			b.Fatalf("%v: %v", th.State, th.Fault)
		}
	}
}

func BenchmarkE4_TwoWayCall(b *testing.B) {
	e, _ := experiments.Lookup("E4")
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5_CacheBanks(b *testing.B) {
	e, _ := experiments.Lookup("E5")
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_ContextSwitch_Guarded(b *testing.B) {
	benchSwitchTrace(b, baseline.NewGuarded(baseline.DefaultCosts()))
}

func BenchmarkE6_ContextSwitch_PageFlush(b *testing.B) {
	benchSwitchTrace(b, baseline.NewPageNoASID(baseline.DefaultCosts()))
}

func BenchmarkE6_ContextSwitch_DomainPage(b *testing.B) {
	benchSwitchTrace(b, baseline.NewDomainPage(baseline.DefaultCosts()))
}

func benchSwitchTrace(b *testing.B, m baseline.Model) {
	b.Helper()
	tr := workload.Interleaved(8, 500, 1, 2, 1<<30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m.Run(tr)
		if res.Refs == 0 {
			b.Fatal("empty run")
		}
	}
}

func BenchmarkE7_TagMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if baseline.TagOverheadBytes(8<<20) == 0 {
			b.Fatal("no overhead computed")
		}
	}
}

func BenchmarkE8_Buddy(b *testing.B) {
	rng := workload.NewRNG(9)
	sizes := workload.Sizes(rng, workload.SizesSmallObjects, 4096, 4, 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := buddy.New(0, 22, 3)
		if err != nil {
			b.Fatal(err)
		}
		var live []uint64
		for _, sz := range sizes {
			if len(live) > 64 {
				a.Free(live[0])
				live = live[1:]
			}
			addr, _, err := a.AllocBytes(sz)
			if err != nil {
				continue
			}
			live = append(live, addr)
		}
	}
}

func BenchmarkE9_Revocation_Unmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := mustKernel(b)
		victim, err := k.AllocSegment(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := k.Revoke(victim); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9_Revocation_Sweep(b *testing.B) {
	k := mustKernel(b)
	victim, err := k.AllocSegment(4096)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := k.AllocSegment(4096); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.SweepRevoke(victim); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_SFI(b *testing.B) {
	tr := workload.ArraySweep(0, 1<<30, 4096, 8, false)
	m := baseline.NewSFI(baseline.DefaultCosts())
	for i := 0; i < b.N; i++ {
		m.Run(tr)
	}
}

func BenchmarkE11_LoopAddressing(b *testing.B) {
	benchKernelProgram(b, `
		ldi r3, 256
	loop:
		ld   r5, r1, 0
		leai r1, r1, 8
		subi r3, r3, 1
		bnez r3, loop
		halt
	`, 4096)
}

func BenchmarkE12_VASGC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := mustKernel(b)
		var first core.Pointer
		var prev core.Pointer
		for j := 0; j < 128; j++ {
			p, err := k.AllocSegment(256)
			if err != nil {
				b.Fatal(err)
			}
			if j == 0 {
				first = p
			} else {
				if err := k.M.Space.WriteWord(prev.Base(), p.Word()); err != nil {
					b.Fatal(err)
				}
			}
			prev = p
		}
		st, err := k.CollectAddressSpace([]word.Word{first.Word()})
		if err != nil {
			b.Fatal(err)
		}
		if st.LiveSegments != 128 {
			b.Fatalf("live = %d", st.LiveSegments)
		}
	}
}

func BenchmarkE13_Translation_Guarded(b *testing.B) {
	benchTranslate(b, baseline.NewGuarded(baseline.DefaultCosts()))
}

func BenchmarkE13_Translation_CapTable(b *testing.B) {
	benchTranslate(b, baseline.NewCapTable(baseline.DefaultCosts()))
}

func benchTranslate(b *testing.B, m baseline.Model) {
	b.Helper()
	tr := workload.ArraySweep(0, 1<<30, 4096, 8, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(tr)
	}
}

// --- simulator throughput ------------------------------------------------

// BenchmarkSimulatorIPS measures simulated instructions per second of
// the full machine (useful to size experiment budgets).
func BenchmarkSimulatorIPS(b *testing.B) {
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	cfg.PhysBytes = 4 << 20
	k, err := kernel.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	prog := mustAssemble(`
	loop:
		addi r2, r2, 1
		br loop
	`)
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := k.Spawn(1, ip, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	k.Run(uint64(b.N))
	b.StopTimer()
	if k.M.Stats().Instructions == 0 {
		b.Fatal("no instructions executed")
	}
}

// The telemetry variants of the IPS benchmark size the observability
// tax: an attached-but-disabled tracer must stay within a few percent
// of the tracer-free loop (every emit site gates on Tracer.Enabled
// before constructing an event), while full instruction tracing is
// allowed to be expensive — it is opt-in via -trace/-trace-out.
func benchSimulatorIPS(b *testing.B, attach func(k *kernel.Kernel)) {
	b.Helper()
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	cfg.PhysBytes = 4 << 20
	k, err := kernel.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	prog := mustAssemble(`
	loop:
		addi r2, r2, 1
		br loop
	`)
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := k.Spawn(1, ip, nil); err != nil {
		b.Fatal(err)
	}
	if attach != nil {
		attach(k)
	}
	b.ResetTimer()
	k.Run(uint64(b.N))
	b.StopTimer()
	if k.M.Stats().Instructions == 0 {
		b.Fatal("no instructions executed")
	}
}

func BenchmarkSimulatorIPS_TelemetryDisabled(b *testing.B) {
	benchSimulatorIPS(b, func(k *kernel.Kernel) {
		k.SetTracer(telemetry.NewTracer(1 << 10)) // attached, all kinds masked off
	})
}

func BenchmarkSimulatorIPS_EventsNoInstr(b *testing.B) {
	benchSimulatorIPS(b, func(k *kernel.Kernel) {
		tr := telemetry.NewTracer(1 << 10)
		tr.EnableAll()
		tr.Disable(telemetry.EvInstr)
		k.SetTracer(tr)
	})
}

func BenchmarkSimulatorIPS_FullTrace(b *testing.B) {
	benchSimulatorIPS(b, func(k *kernel.Kernel) {
		tr := telemetry.NewTracer(1 << 10)
		tr.EnableAll()
		k.SetTracer(tr)
	})
}

func BenchmarkSimulatorIPS_Profiler(b *testing.B) {
	benchSimulatorIPS(b, func(k *kernel.Kernel) {
		k.M.Profiler = telemetry.NewProfiler(1)
	})
}

func mustKernel(b *testing.B) *kernel.Kernel {
	b.Helper()
	cfg := machine.MMachine()
	cfg.PhysBytes = 16 << 20
	k, err := kernel.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return k
}

// --- multicomputer (Sec 3) ----------------------------------------------

func BenchmarkE14_RemoteAccess(b *testing.B) {
	cfg := multi.DefaultConfig()
	cfg.Node.PhysBytes = 1 << 20
	prog := mustAssemble(`
		ldi r3, 100
	loop:
		ld r2, r1, 0
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := multi.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		seg, err := s.Nodes[7].K.AllocSegment(4096)
		if err != nil {
			b.Fatal(err)
		}
		ip, err := s.Nodes[0].K.LoadProgram(prog, false)
		if err != nil {
			b.Fatal(err)
		}
		th, err := s.Nodes[0].K.Spawn(1, ip, map[int]word.Word{1: seg.Word()})
		if err != nil {
			b.Fatal(err)
		}
		s.Run(1_000_000)
		if th.State != machine.Halted {
			b.Fatalf("%v: %v", th.State, th.Fault)
		}
	}
}

func BenchmarkE15_MeshSend(b *testing.B) {
	n, err := noc.New(noc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		arr, err := n.Send(i%8, (i+3)%8, now)
		if err != nil {
			b.Fatal(err)
		}
		now = arr
	}
}

// --- design ablation: masked comparator vs bounds recompute ------------

// leaRecompute is the conventional alternative to Fig. 2's masked
// comparator: recompute segment base and limit, then range-check. Same
// semantics, more datapath work — the bench quantifies the hardware
// argument for the comparator.
func leaRecompute(p core.Pointer, off int64) (core.Pointer, bool) {
	base := p.Base()
	limit := base + p.SegSize()
	na := p.Addr() + uint64(off)
	if na < base || na >= limit {
		return core.Pointer{}, false
	}
	q, err := core.LEA(p, off) // reuse the committed path for the result
	return q, err == nil
}

func BenchmarkAblation_LEAMaskedComparator(b *testing.B) {
	p := mustMake(core.PermReadWrite, 20, 1<<30)
	for i := 0; i < b.N; i++ {
		if _, err := core.LEA(p, int64(i&0xffff)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_LEARecomputeBounds(b *testing.B) {
	p := mustMake(core.PermReadWrite, 20, 1<<30)
	for i := 0; i < b.N; i++ {
		if _, ok := leaRecompute(p, int64(i&0xffff)); !ok {
			b.Fatal("unexpected bounds failure")
		}
	}
}

// --- wide issue ----------------------------------------------------------

func BenchmarkE16_WideIssue(b *testing.B) {
	e, _ := experiments.Lookup("E16")
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE20_DemandPaging(b *testing.B) {
	e, _ := experiments.Lookup("E20")
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE21_SoftwareSwitch(b *testing.B) {
	e, _ := experiments.Lookup("E21")
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- hot-path benchmarks (BENCH_hotpath.json) ----------------------------
//
// These measure the simulator's raw cycle-loop throughput, reported as
// simulated instructions per host-second. BenchmarkMachine_CycleLoop
// steps a single-cluster machine through a non-terminating workload so
// the steady-state fetch/decode/execute path is isolated (0 allocs/op
// is the hit-path contract); BenchmarkMulti_Run8Nodes runs the 8-node
// multicomputer to completion under the serial and parallel schedulers.

// hotpathFib is an ALU/branch loop: fetch + decode dominate.
const hotpathFib = `
	ldi  r3, 0
	ldi  r4, 1
loop:
	add  r6, r3, r4
	mov  r3, r4
	mov  r4, r6
	br   loop
`

// hotpathSweep walks a 2KB window of the scratch segment with paired
// store/load traffic: the banked cache and translation paths dominate.
const hotpathSweep = `
	mov  r5, r1
	ldi  r2, 256
sweep:
	st   r5, 0, r2
	ld   r6, r5, 0
	leai r5, r5, 8
	subi r2, r2, 1
	bnez r2, sweep
	mov  r5, r1
	ldi  r2, 256
	br   sweep
`

func benchCycleLoop(b *testing.B, src string, segBytes uint64, useJIT bool) {
	b.Helper()
	prog := mustAssemble(src)
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	cfg.PhysBytes = 4 << 20
	k, err := kernel.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if useJIT {
		k.M.EnableJIT(jit.DefaultConfig())
	}
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		b.Fatal(err)
	}
	regs := map[int]word.Word{}
	if segBytes > 0 {
		seg, err := k.AllocSegment(segBytes)
		if err != nil {
			b.Fatal(err)
		}
		regs[1] = seg.Word()
	}
	th, err := k.Spawn(1, ip, regs)
	if err != nil {
		b.Fatal(err)
	}
	if useJIT {
		k.M.JITRegister(prog, ip.Addr(), capverify.Config{DataBytes: segBytes})
	}
	k.Run(4096) // warm the demand pager, TLB, caches and block heat
	if th.State == machine.Faulted {
		b.Fatalf("workload faulted: %v", th.Fault)
	}
	before := k.M.Stats().Instructions
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.M.Step()
	}
	b.StopTimer()
	instr := k.M.Stats().Instructions - before
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(instr)/sec, "sim-instr/s")
	}
	if useJIT {
		eng := k.M.JIT()
		if eng.Counters.Compiled == 0 || eng.Counters.Entries == 0 {
			b.Fatalf("translator never engaged: %+v", eng.Counters)
		}
	}
}

func BenchmarkMachine_CycleLoop(b *testing.B) {
	b.Run("fib", func(b *testing.B) { benchCycleLoop(b, hotpathFib, 0, false) })
	b.Run("sweep", func(b *testing.B) { benchCycleLoop(b, hotpathSweep, 4096, false) })
}

// BenchmarkMachine_CycleLoopJIT is the same workload pair with the
// check-eliding superblock translator enabled (BENCH_jit.json): one
// k.M.Step() call executes a whole compiled block, so sim-instr/s is
// the honest cross-tier metric, not ns/op.
func BenchmarkMachine_CycleLoopJIT(b *testing.B) {
	b.Run("fib", func(b *testing.B) { benchCycleLoop(b, hotpathFib, 0, true) })
	b.Run("sweep", func(b *testing.B) { benchCycleLoop(b, hotpathSweep, 4096, true) })
}

// hotpathNode mixes local compute with a remote load every 16th
// iteration (r2 holds a pointer into the next node's slice of the
// address space) — the cross-node traffic pattern the parallel
// scheduler must serialize deterministically.
const hotpathNode = `
	ldi  r3, 20000
	ldi  r7, 15
loop:
	add  r5, r5, r3
	and  r6, r3, r7
	bnez r6, skip
	ld   r8, r2, 0
skip:
	subi r3, r3, 1
	bnez r3, loop
	halt
`

func benchMulti8(b *testing.B, parallel bool) {
	b.Helper()
	prog := mustAssemble(hotpathNode)
	b.ReportAllocs()
	var instr uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := multi.DefaultConfig()
		cfg.Node.PhysBytes = 1 << 20
		cfg.Serial = !parallel
		s, err := multi.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var segs []word.Word
		for _, n := range s.Nodes {
			seg, err := n.K.AllocSegment(4096)
			if err != nil {
				b.Fatal(err)
			}
			segs = append(segs, seg.Word())
		}
		for nid, n := range s.Nodes {
			ip, err := n.K.LoadProgram(prog, false)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := n.K.Spawn(1, ip, map[int]word.Word{2: segs[(nid+1)%len(s.Nodes)]}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		s.Run(100_000_000)
		b.StopTimer()
		for _, n := range s.Nodes {
			for _, th := range n.K.M.Threads() {
				if th.State != machine.Halted {
					b.Fatalf("node %d: %v %v", n.ID, th.State, th.Fault)
				}
			}
			instr += n.K.M.Stats().Instructions
		}
		b.StartTimer()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(instr)/sec, "sim-instr/s")
	}
}

func BenchmarkMulti_Run8Nodes(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchMulti8(b, false) })
	b.Run("parallel", func(b *testing.B) { benchMulti8(b, true) })
}
