; sieve.s — Sieve of Eratosthenes over [2, 256); counts primes into r4.
; The scratch segment (r1, default 4KB) holds one word per candidate.
; Every store is bounds-checked by the pointer hardware.
;
;   go run ./cmd/mmsim programs/sieve.s
	ldi  r2, 2          ; p
outer:
	slti r3, r2, 256
	beqz r3, count
	shli r4, r2, 3
	lea  r5, r1, r4     ; &flags[p]
	ld   r6, r5, 0
	bnez r6, next       ; composite
	; mark multiples 2p, 3p, ...
	add  r7, r2, r2     ; m = 2p
mark:
	slti r3, r7, 256
	beqz r3, next
	shli r8, r7, 3
	lea  r9, r1, r8
	ldi  r10, 1
	st   r9, 0, r10
	add  r7, r7, r2
	br   mark
next:
	addi r2, r2, 1
	br   outer
count:
	ldi  r2, 2
	ldi  r4, 0
cloop:
	slti r3, r2, 256
	beqz r3, done
	shli r5, r2, 3
	lea  r6, r1, r5
	ld   r7, r6, 0
	bnez r7, skip
	addi r4, r4, 1      ; prime
skip:
	addi r2, r2, 1
	br   cloop
done:
	halt
