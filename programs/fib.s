; fib.s — iterative Fibonacci; leaves fib(20) in r4 and stores the
; sequence into the scratch segment (r1).
;
;   go run ./cmd/mmsim programs/fib.s
	ldi  r2, 20        ; n
	ldi  r3, 0         ; fib(i-2)
	ldi  r4, 1         ; fib(i-1)
	mov  r5, r1        ; cursor
loop:
	st   r5, 0, r4
	add  r6, r3, r4    ; fib(i)
	mov  r3, r4
	mov  r4, r6
	leai r5, r5, 8
	subi r2, r2, 1
	bnez r2, loop
	halt
