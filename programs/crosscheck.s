; crosscheck.s — exercises the pointer instructions end to end:
; derives, restricts, narrows, stores a capability through itself,
; reloads it and reads back. r9 ends as 1 if every step agreed.
;
;   go run ./cmd/mmsim programs/crosscheck.s
	ldi   r2, 4242
	st    r1, 16, r2      ; plant a value
	leai  r3, r1, 16      ; derive pointer to it
	ldi   r4, 2           ; PermReadOnly
	restrict r5, r3, r4   ; weaken
	ld    r6, r5, 0       ; read through the weak pointer
	st    r1, 0, r5       ; spill the capability itself
	ld    r7, r1, 0       ; reload it
	ld    r8, r7, 0       ; and dereference again
	seq   r9, r6, r8      ; both reads must agree
	seqi  r10, r6, 4242
	and   r9, r9, r10
	halt
