; memlib.s — a tiny position-independent library: linked with mmld.
;
; Calling convention: arguments r4..r7, result r5, return via r14.
; Pointers are capabilities: every routine is bounds-checked by the
; hardware, so a bad length faults instead of corrupting memory.
.export memfill
.export memsum

; memfill(dst=r4, words=r6, value=r7)
memfill:
	beqz r6, mf_done
	mov  r8, r4
	mov  r9, r6
mf_loop:
	st   r8, 0, r7
	subi r9, r9, 1
	beqz r9, mf_done
	leai r8, r8, 8
	br   mf_loop
mf_done:
	jmp  r14

; memsum(src=r4, words=r6) -> r5
memsum:
	ldi  r5, 0
	beqz r6, ms_done
	mov  r8, r4
	mov  r9, r6
ms_loop:
	ld   r10, r8, 0
	add  r5, r5, r10
	subi r9, r9, 1
	beqz r9, ms_done
	leai r8, r8, 8
	br   ms_loop
ms_done:
	jmp  r14
