; usemem.s — links against memlib.s:
;
;   go run ./cmd/mmld programs/usemem.s programs/memlib.s
;
; Fills 32 words of the scratch segment with 7, sums them (expect 224
; in r5), all through linked library calls.
.import memfill
.import memsum
	ldi   r2, =memfill
	movip r3
	leab  r3, r3, r2    ; execute pointer to memfill
	mov   r4, r1
	ldi   r6, 32
	ldi   r7, 7
	jmpl  r14, r3
	ldi   r2, =memsum
	movip r3
	leab  r3, r3, r2
	mov   r4, r1
	ldi   r6, 32
	jmpl  r14, r3       ; r5 = 224
	halt
